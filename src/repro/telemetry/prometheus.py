"""Prometheus text exposition and the embedded ``/metrics`` endpoint.

Turns a :class:`~repro.telemetry.metrics.MetricsRegistry` into the
Prometheus text format (version ``0.0.4``) and serves it from a stdlib
``http.server`` so a long-running ``repro serve --listen PORT`` workload is
scrapeable while it runs.  No third-party client library: the format is
four line shapes (``# HELP``, ``# TYPE``, samples, cumulative histogram
buckets) and writing them directly keeps the dependency budget at zero.

Naming: dotted instrument names (``service.cache.hits``) become legal
Prometheus series by swapping separators for ``_``
(``service_cache_hits_total`` — counters get the conventional ``_total``
suffix).  Per-shard instruments are the one labeled family: a shard
mirrors its counters and queue gauge under ``service.shard.<i>.<rest>``,
and the renderer folds that index into a proper Prometheus label —
``service_shard_requests_total{shard="2"}`` — so one series family covers
any shard count.  :data:`METRIC_INVENTORY` is the curated catalogue of the
families the system emits; ``docs/observability.md`` embeds its rendered
table verbatim and ``test_doc_drift.py`` keeps the two in lock-step.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "CONTENT_TYPE",
    "METRIC_INVENTORY",
    "MetricsServer",
    "escape_label_value",
    "metric_inventory_table",
    "prometheus_name",
    "render_prometheus",
]

#: exposition Content-Type mandated by the text format spec
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, *, suffix: str = "") -> str:
    """A dotted instrument name as a legal Prometheus metric name.

    Dots (and any other illegal characters) become ``_``; a leading digit
    is guarded with ``_``.  ``suffix`` is appended as-is (``_total``, ...).
    """
    out = _INVALID.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out + suffix


def escape_label_value(value: str) -> str:
    """A label value escaped per the text-exposition spec.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside ``label="..."`` — in that order, so an
    already-present backslash never double-escapes the quote that follows.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value) -> str:
    """A sample value in exposition syntax (ints stay integral)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


#: shard-mirrored instruments: ``service.shard.<i>.<rest>`` — the index
#: folds into a ``shard`` label at render time
_SHARD_NAME = re.compile(r"^service\.shard\.(\d+)\.(.+)$")


def _split_shard_series(samples: dict) -> Tuple[dict, dict]:
    """Partition one kind's samples into plain and shard-labeled series.

    Returns ``(plain, labeled)`` where ``labeled`` maps the de-sharded
    family name (``service.shard.<rest>``) to ``[(shard, value), ...]``
    in ascending shard order — one Prometheus family per ``<rest>``, any
    shard count.
    """
    plain: Dict[str, object] = {}
    labeled: Dict[str, list] = {}
    for name, value in samples.items():
        m = _SHARD_NAME.match(name)
        if m is None:
            plain[name] = value
        else:
            family = f"service.shard.{m.group(2)}"
            labeled.setdefault(family, []).append((int(m.group(1)), value))
    for series in labeled.values():
        series.sort()
    return plain, labeled


def render_prometheus(registry) -> str:
    """Render every instrument of ``registry`` as text exposition.

    Counters gain ``_total``; histograms expand to the conventional
    cumulative ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``.
    Per-shard mirrors (``service.shard.<i>.*``) render as one labeled
    family per instrument: ``service_shard_<rest>{shard="<i>"}``.
    Families are sorted by name so scrapes diff cleanly.
    """
    snap = registry.to_dict()
    lines: List[str] = []

    counters, shard_counters = _split_shard_series(snap.get("counters", {}))
    gauges, shard_gauges = _split_shard_series(snap.get("gauges", {}))

    for name, value in counters.items():
        pname = prometheus_name(name, suffix="_total")
        lines.append(f"# HELP {pname} repro counter {name}")
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_fmt(value)}")

    for family in sorted(shard_counters):
        pname = prometheus_name(family, suffix="_total")
        lines.append(f"# HELP {pname} repro counter {family} by shard")
        lines.append(f"# TYPE {pname} counter")
        for shard, value in shard_counters[family]:
            lines.append(f'{pname}{{shard="{shard}"}} {_fmt(value)}')

    for name, value in gauges.items():
        pname = prometheus_name(name)
        lines.append(f"# HELP {pname} repro gauge {name}")
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(value)}")

    for family in sorted(shard_gauges):
        pname = prometheus_name(family)
        lines.append(f"# HELP {pname} repro gauge {family} by shard")
        lines.append(f"# TYPE {pname} gauge")
        for shard, value in shard_gauges[family]:
            lines.append(f'{pname}{{shard="{shard}"}} {_fmt(value)}')

    for name, summary in snap.get("histograms", {}).items():
        pname = prometheus_name(name)
        lines.append(f"# HELP {pname} repro histogram {name}")
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        buckets = summary.get("buckets") or {}
        # to_dict keeps bounds as strings in ascending order ("inf" last)
        for le, n in buckets.items():
            cumulative += n
            bound = "+Inf" if le == "inf" else escape_label_value(le)
            lines.append(f'{pname}_bucket{{le="{bound}"}} {cumulative}')
        if "inf" not in buckets:
            lines.append(f'{pname}_bucket{{le="+Inf"}} {summary["count"]}')
        lines.append(f"{pname}_sum {_fmt(summary.get('sum', 0.0))}")
        lines.append(f"{pname}_count {summary['count']}")

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# metric catalogue (docs drift-guard source of truth)
# ----------------------------------------------------------------------
#: (instrument family, kind, what it measures) — dotted names; ``*``
#: marks a reason/stage label folded into the name at emission time
METRIC_INVENTORY: Tuple[Tuple[str, str, str], ...] = (
    ("service.requests", "counter", "requests admitted by `ReorderService.submit`"),
    ("service.computed", "counter", "requests computed (cache/coalesce misses)"),
    ("service.coalesced", "counter", "requests piggybacked on an in-flight twin"),
    ("service.rejected", "counter", "requests refused by backpressure"),
    ("service.timeouts", "counter", "requests that hit their deadline"),
    ("service.fallbacks.*", "counter", "degradations taken, by landing method"),
    ("service.cache.hits", "counter", "memory-cache hits"),
    ("service.cache.misses", "counter", "memory-cache misses"),
    ("service.cache.disk_hits", "counter", "disk-cache hits"),
    ("service.cache.evictions", "counter", "LRU evictions"),
    ("service.cache.size", "gauge", "entries currently cached"),
    ("service.queue.depth", "gauge", "requests waiting for a slot"),
    ("service.shard.*", "counter/gauge", "per-shard mirrors of the service counters and queue depth, folded into a `shard=\"<i>\"` label"),
    ("service.hit_latency_ms", "histogram", "wall ms to serve a warm cache hit"),
    ("service.batch.size", "histogram", "requests per batched-admission dispatch group"),
    ("parallel.tasks", "counter", "component tasks dispatched to the pool"),
    ("parallel.matrices", "counter", "matrices processed by `map_matrices`"),
    ("parallel.chunks", "counter", "matrix chunks shipped to the pool"),
    ("parallel.fallbacks.*", "counter", "in-process fallbacks, by reason"),
    ("parallel.pool.reused", "counter", "dispatches served by an already-warm persistent pool"),
    ("parallel.shm.published", "counter", "CSR patterns published into shared memory"),
    ("parallel.shm.bytes", "counter", "bytes written through the shared-memory transport"),
    ("parallel.shm.leaked", "counter", "segments reclaimed by the atexit sweep (should stay 0)"),
    ("threads.batches.*", "counter", "speculative batch lifecycle (generated/dequeued/executed/empty)"),
    ("threads.speculation.*", "counter", "speculation economy (discovered/dropped/rediscovery_passes/sorted_elements)"),
    ("threads.overhangs.*", "counter", "overhang forwarding (forwarded/nodes)"),
    ("threads.n_workers", "gauge", "worker threads serving the run"),
    ("threads.batch.discovered", "histogram", "speculatively discovered nodes per batch"),
    ("threads.batch.dropped", "histogram", "nodes dropped per rediscovery pass"),
    ("threads.speculation.efficiency", "gauge", "kept fraction of speculatively discovered nodes (last run)"),
    ("vectorized.levels", "counter", "BFS levels swept by the vectorized kernel"),
    ("vectorized.edges_gathered", "counter", "CSR edges gathered"),
    ("vectorized.nodes_ordered", "counter", "nodes placed in the permutation"),
    ("vectorized.frontier", "histogram", "BFS frontier width per level"),
    ("request.bandwidth_reduction", "histogram", "per-request relative bandwidth reduction (1 - after/before)"),
    ("request.envelope_reduction", "histogram", "per-request relative envelope (profile) reduction"),
    ("slo.health_score", "gauge", "fraction of evaluable SLOs currently met"),
    ("slo.*", "gauge", "per-SLO burn (1.0 = at objective) and ok flag"),
    ("cg.iterations", "counter", "conjugate-gradient iterations"),
    ("cg.spmv", "counter", "sparse matrix-vector products"),
    ("cg.final_relative_residual", "histogram", "relative residual at convergence"),
    ("telemetry.jsonl.skipped", "counter", "corrupt JSONL lines skipped by `read_jsonl`"),
    ("telemetry.profiler.samples", "gauge", "stack samples held by the sampling profiler (fork-worker profiles merged in)"),
    ("telemetry.profiler.overhead_pct", "gauge", "profiler self-measurement: % of wall time spent inside sample ticks"),
    ("sim.*", "counter/gauge", "simulated-machine stats absorbed via `absorb_run_stats`"),
)


def metric_inventory_table() -> str:
    """The catalogue as a markdown table with exposition names.

    Embedded verbatim in ``docs/observability.md``; regenerate with
    ``repro telemetry inventory`` whenever a family is added.
    """
    lines = [
        "| instrument | kind | Prometheus series | measures |",
        "|---|---|---|---|",
    ]
    for family, kind, desc in METRIC_INVENTORY:
        wildcard = family.endswith(".*")
        base = family[:-2] if wildcard else family
        series = prometheus_name(base)
        if wildcard:
            series += "_*"
        if kind == "counter":
            series += "_total"
        lines.append(f"| `{family}` | {kind} | `{series}` | {desc} |")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# embedded HTTP endpoint
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Routes ``/metrics`` / ``/healthz`` / ``/statusz`` plus the debug
    pair ``/debug/flame`` (collapsed stacks) and ``/debug/critpath``
    (critical-path JSON); 404 otherwise."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        srv: "MetricsServer" = self.server.metrics_server  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            srv.refresh_slo()
            body = render_prometheus(srv.registry).encode()
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        elif path == "/statusz":
            body = (json.dumps(srv.status(), indent=2, sort_keys=True)
                    + "\n").encode()
            self._reply(200, "application/json", body)
        elif path == "/debug/flame":
            text = srv.flame_text()
            if text is None:
                self._reply(404, "text/plain; charset=utf-8",
                            b"profiler not running\n")
            else:
                self._reply(200, "text/plain; charset=utf-8", text.encode())
        elif path == "/debug/critpath":
            body = (json.dumps(srv.critpath_doc(), indent=2, sort_keys=True)
                    + "\n").encode()
            self._reply(200, "application/json", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:
        """Silence per-request stderr chatter (scrapes are periodic)."""


class MetricsServer:
    """Background ``/metrics`` + ``/healthz`` + ``/statusz`` endpoint.

    Binds ``127.0.0.1:port`` (``port=0`` lets the OS pick — tests use
    this), serves from a daemon thread, and reads a live
    :class:`MetricsRegistry` on every scrape, so it can be started before
    the workload and left up for its lifetime.  ``status_fn`` lets the
    owner (the CLI serve loop) splice live service stats into ``/statusz``.

    Every ``/metrics`` scrape and ``/statusz`` read re-evaluates the
    declarative SLO spec (:mod:`repro.telemetry.slo`) against the live
    registry, exporting ``slo.*`` gauges and a health score; ``/statusz``
    additionally reports endpoint ``uptime_s`` and lifecycle ``state``
    (``serving`` / ``shutting-down`` once :meth:`mark_shutdown` ran).
    """

    def __init__(self, registry, port: int = 0, host: str = "127.0.0.1",
                 status_fn: Optional[Callable[[], dict]] = None,
                 calibration_fn: Optional[Callable[[], Optional[dict]]] = None,
                 profile_fn: Optional[Callable[[], Optional[dict]]] = None,
                 critpath_fn: Optional[Callable[[], Optional[dict]]] = None,
                 ) -> None:
        self.registry = registry
        self._status_fn = status_fn
        self._calibration_fn = calibration_fn
        self._profile_fn = profile_fn
        self._critpath_fn = critpath_fn
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.metrics_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._started_unix = time.time()
        self._shutting_down = False

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint."""
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def _calibration(self) -> Optional[dict]:
        if self._calibration_fn is None:
            return None
        try:
            return self._calibration_fn()
        except Exception:  # pragma: no cover - defensive
            return None

    def evaluate_slo(self) -> dict:
        """The live SLO evaluation over the served registry."""
        from repro.telemetry import slo

        return slo.evaluate(
            self.registry.to_dict(), calibration=self._calibration()
        )

    def refresh_slo(self) -> dict:
        """Re-evaluate the SLO spec and mirror it onto ``slo.*`` gauges."""
        from repro.telemetry import slo

        evaluation = self.evaluate_slo()
        slo.export_gauges(self.registry, evaluation)
        return evaluation

    def mark_shutdown(self) -> None:
        """Flip ``/statusz`` state to ``shutting-down`` (graceful drain)."""
        self._shutting_down = True

    def flame_text(self) -> Optional[str]:
        """Collapsed stacks for ``/debug/flame``; None = no profiler.

        ``profile_fn`` (folded counts dict) wins when provided; the
        default reads the process-wide sampling profiler, so ``repro
        serve --profile --listen`` needs no extra wiring.
        """
        folded: Optional[dict] = None
        if self._profile_fn is not None:
            try:
                folded = self._profile_fn()
            except Exception:  # pragma: no cover - defensive
                folded = None
        else:
            from repro.telemetry import profiler as _profiler

            prof = _profiler.get_profiler()
            folded = prof.folded() if prof is not None else None
        if folded is None:
            return None
        from repro.telemetry.export import profile_to_collapsed

        return profile_to_collapsed(folded)

    def critpath_doc(self) -> dict:
        """The ``/debug/critpath`` document (critical path + what-ifs).

        ``critpath_fn`` overrides; the default analyzes the global
        tracer's records.  Always JSON — an empty span store yields a
        ``{"spans": 0, ...}`` stub rather than an error.
        """
        doc: Optional[dict] = None
        if self._critpath_fn is not None:
            try:
                doc = self._critpath_fn()
            except Exception as exc:  # pragma: no cover - defensive
                doc = {"spans": 0, "error": repr(exc)}
        else:
            from repro import telemetry
            from repro.telemetry.critical_path import critical_path

            doc = critical_path(telemetry.get().tracer.records())
        if doc is None:
            doc = {"spans": 0, "note": "no completed spans recorded"}
        return doc

    def status(self) -> dict:
        """The ``/statusz`` document: instrument totals + owner stats +
        SLO health + endpoint lifecycle (uptime, serving/shutting-down)."""
        evaluation = self.refresh_slo()
        snap = self.registry.to_dict()
        doc: Dict[str, object] = {
            "counters": snap.get("counters", {}),
            "gauges": snap.get("gauges", {}),
            "slo": evaluation,
            "uptime_s": time.time() - self._started_unix,
            "state": "shutting-down" if self._shutting_down else "serving",
        }
        from repro.telemetry import profiler as _profiler

        doc["profiler"] = _profiler.profiler_stats()
        if self._status_fn is not None:
            try:
                doc["service"] = self._status_fn()
            except Exception as exc:  # pragma: no cover - defensive
                doc["service"] = {"error": repr(exc)}
        return doc

    def start(self) -> "MetricsServer":
        """Begin serving on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-server", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the endpoint down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
