"""Declarative service-level objectives over the metrics registry.

An :class:`SLO` binds a *signal* — a derived quantity computed from a
metrics snapshot (ratios over counters, histogram quantiles, calibration
summaries) — to an objective and a direction.  The same spec evaluates

* **live**: ``/statusz`` embeds the evaluation and ``/metrics`` exports
  ``slo.*`` gauges on every scrape (see
  :class:`repro.telemetry.prometheus.MetricsServer`);
* **offline**: against the counter aggregates each run record of the
  history store carries (:func:`evaluate_history`), so the SLO trajectory
  is replayable across the whole ``history.jsonl``.

Every signal is *total*: when its inputs are absent (no cache traffic yet,
no speculation run recorded) the signal is ``None`` and the SLO is simply
not evaluable — it neither passes nor burns.  The **health score** is the
met fraction of evaluable SLOs (``1.0`` when nothing is evaluable: an idle
service is a healthy service).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SLO",
    "DEFAULT_SLOS",
    "collect_signals",
    "evaluate",
    "evaluate_history",
    "export_gauges",
    "format_report",
    "quantile_from_summary",
]


@dataclass(frozen=True)
class SLO:
    """One objective: ``signal`` must stay on the right side of ``objective``.

    ``direction="max"`` means the signal must stay **at or below** the
    objective (latencies, error rates); ``direction="min"`` means at or
    above (hit ratios).  ``burn`` normalizes consumption of the objective
    to 1.0 = exactly at the limit, so dashboards can alert on a single
    scale regardless of direction.
    """

    name: str
    description: str
    signal: str
    objective: float
    direction: str = "max"
    unit: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("max", "min"):
            raise ValueError(
                f"direction must be 'max' or 'min'; got {self.direction!r}"
            )

    def check(self, value: Optional[float]) -> Optional[bool]:
        """Whether ``value`` meets the objective (``None`` = not evaluable)."""
        if value is None:
            return None
        if self.direction == "max":
            return value <= self.objective
        return value >= self.objective

    def burn(self, value: Optional[float]) -> Optional[float]:
        """Objective consumption: 1.0 = at the limit, > 1.0 = violated."""
        if value is None:
            return None
        if self.direction == "max":
            return value / self.objective if self.objective else float("inf")
        return self.objective / value if value else float("inf")


#: the shipped objectives — what "healthy" means for this service
DEFAULT_SLOS: Tuple[SLO, ...] = (
    SLO(
        name="warm_hit_latency_p99_ms",
        description="p99 wall time to serve a warm cache hit",
        signal="warm_hit_p99_ms",
        objective=5.0,
        direction="max",
        unit="ms",
    ),
    SLO(
        name="cache_hit_ratio",
        description="memory+disk cache hits over all cache lookups",
        signal="cache_hit_ratio",
        objective=0.5,
        direction="min",
    ),
    SLO(
        name="auto_mispick_rate",
        description="calibrated method=auto cost-model mispick rate",
        signal="auto_mispick_rate",
        objective=0.25,
        direction="max",
    ),
    SLO(
        name="service_fallback_rate",
        description="degraded requests over admitted requests",
        signal="service_fallback_rate",
        objective=0.05,
        direction="max",
    ),
    SLO(
        name="speculation_drop_rate",
        description="speculatively discovered nodes later dropped",
        signal="speculation_drop_rate",
        objective=0.5,
        direction="max",
    ),
)


def quantile_from_summary(summary: Optional[dict], q: float) -> Optional[float]:
    """Estimated ``q``-quantile from a ``Histogram.to_dict()`` snapshot.

    Mirrors :meth:`repro.telemetry.metrics.Histogram.quantile` but works on
    the serialized form, so offline history records and live registries
    share one code path.  ``None`` when the snapshot is absent or empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]; got {q!r}")
    if not summary or not summary.get("count"):
        return None
    count = summary["count"]
    lo_all, hi_all = summary.get("min", 0.0), summary.get("max", 0.0)
    if count == 1:
        return float(lo_all)
    buckets = summary.get("buckets") or {}
    bounds = sorted(
        (float("inf") if le == "inf" else float(le), n)
        for le, n in buckets.items()
    )
    rank = q * (count - 1)
    seen = 0
    prev_bound: Optional[float] = None
    for bound, n in bounds:
        seen += n
        if seen > rank:
            lo = prev_bound if prev_bound is not None else lo_all
            hi = hi_all if bound == float("inf") else bound
            est = (lo + hi) / 2.0
            return float(min(max(est, lo_all), hi_all))
        prev_bound = bound
    return float(hi_all)


def _ratio(num: float, den: float) -> Optional[float]:
    return (num / den) if den else None


def collect_signals(
    snapshot: dict, *, calibration: Optional[dict] = None
) -> Dict[str, Optional[float]]:
    """Derive every SLO input signal from a metrics snapshot.

    ``snapshot`` is a :meth:`MetricsRegistry.to_dict` document (or the
    equivalent ``counters``/``histograms`` aggregate a history record
    carries); ``calibration`` is a flight-recorder calibration summary
    (``{"mispick_rate": ...}``) when one exists.
    """
    counters = snapshot.get("counters") or {}
    histograms = snapshot.get("histograms") or {}

    hits = counters.get("service.cache.hits", 0)
    misses = counters.get("service.cache.misses", 0)
    requests = counters.get("service.requests", 0)
    fallbacks = sum(
        v for k, v in counters.items() if k.startswith("service.fallbacks.")
    )
    discovered = counters.get("threads.speculation.discovered", 0)
    dropped = counters.get("threads.speculation.dropped", 0)

    return {
        "warm_hit_p99_ms": quantile_from_summary(
            histograms.get("service.hit_latency_ms"), 0.99
        ),
        "cache_hit_ratio": _ratio(hits, hits + misses),
        "auto_mispick_rate": (
            calibration.get("mispick_rate") if calibration else None
        ),
        "service_fallback_rate": _ratio(fallbacks, requests),
        "speculation_drop_rate": _ratio(dropped, discovered),
    }


def evaluate(
    snapshot: dict,
    *,
    slos: Sequence[SLO] = DEFAULT_SLOS,
    calibration: Optional[dict] = None,
) -> dict:
    """Evaluate ``slos`` against one metrics snapshot.

    Returns ``{"health_score", "evaluated", "met", "slos": {name: {...}}}``
    — per SLO the measured value, objective, direction, burn and verdict
    (``None`` verdict = not evaluable from this snapshot).
    """
    signals = collect_signals(snapshot, calibration=calibration)
    per_slo: Dict[str, dict] = {}
    evaluated = met = 0
    for slo in slos:
        value = signals.get(slo.signal)
        ok = slo.check(value)
        if ok is not None:
            evaluated += 1
            met += int(ok)
        per_slo[slo.name] = {
            "description": slo.description,
            "value": value,
            "objective": slo.objective,
            "direction": slo.direction,
            "unit": slo.unit,
            "burn": slo.burn(value),
            "ok": ok,
        }
    return {
        "health_score": (met / evaluated) if evaluated else 1.0,
        "evaluated": evaluated,
        "met": met,
        "slos": per_slo,
    }


def evaluate_history(
    runs: Sequence[dict], *, slos: Sequence[SLO] = DEFAULT_SLOS
) -> List[dict]:
    """Offline SLO trajectory: one evaluation per history run record.

    Each run's summed ``counters`` aggregate plays the role of the live
    registry snapshot, and its stored ``calibration`` summary supplies the
    mispick signal.  Returns ``[{git_sha, timestamp, evaluation}, ...]``.
    """
    out = []
    for run in runs:
        evaluation = evaluate(
            {"counters": run.get("counters") or {}},
            slos=slos,
            calibration=run.get("calibration"),
        )
        out.append({
            "git_sha": run.get("git_sha"),
            "timestamp": run.get("timestamp"),
            "evaluation": evaluation,
        })
    return out


def export_gauges(registry, evaluation: dict) -> None:
    """Mirror an evaluation onto ``slo.*`` gauges of ``registry``.

    ``slo.health_score`` is always set; per-SLO ``slo.<name>.burn`` /
    ``slo.<name>.ok`` gauges are set only when the SLO is evaluable, so
    the exposition never shows a made-up zero burn.
    """
    registry.gauge("slo.health_score").set(evaluation["health_score"])
    for name, doc in evaluation["slos"].items():
        if doc["ok"] is None:
            continue
        registry.gauge(f"slo.{name}.burn").set(doc["burn"])
        registry.gauge(f"slo.{name}.ok").set(int(doc["ok"]))


def format_report(evaluation: dict) -> str:
    """The evaluation as an aligned, human-readable table."""
    lines = [
        f"SLO health: {evaluation['health_score']:.2f} "
        f"({evaluation['met']}/{evaluation['evaluated']} evaluable met)",
        "",
    ]
    name_w = max(len(n) for n in evaluation["slos"])
    header = (f"{'slo':<{name_w}} {'value':>10} {'objective':>10} "
              f"{'burn':>6}  verdict")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(evaluation["slos"]):
        doc = evaluation["slos"][name]
        value = "-" if doc["value"] is None else f"{doc['value']:10.4f}"
        burn = "-" if doc["burn"] is None else f"{doc['burn']:6.2f}"
        bound = ("<=" if doc["direction"] == "max" else ">=")
        verdict = (
            "n/a" if doc["ok"] is None else ("ok" if doc["ok"] else "VIOLATED")
        )
        lines.append(
            f"{name:<{name_w}} {value:>10} {bound}{doc['objective']:>8.4f} "
            f"{burn:>6}  {verdict}"
        )
    return "\n".join(lines)
