"""Cost-model flight recorder: log every ``auto`` pick, then calibrate.

``method="auto"`` trusts :func:`repro.backends.resolve_auto_method` — an
argmin over analytic cycle estimates that nothing ever checks against
reality.  The flight recorder closes the loop: every auto resolution
appends one JSONL record (problem shape, all candidate estimates, the
chosen backend, the measured ordering wall time) to a bounded ring file,
and :func:`calibrate` aggregates a recorded session into a
predicted-vs-actual report with a per-backend **mispick rate**: the
fraction of picks where another candidate's *calibrated* prediction beat
the chosen one.  ``repro telemetry calibrate`` prints the report and
``benchmarks/check_regressions.py`` flags rates above threshold.

Recording is off unless :func:`configure` is called or the
``REPRO_FLIGHT_PATH`` environment variable names a file; the overhead is
one dict + one appended line per *auto* request, nothing on explicit
method picks.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.telemetry.events import read_jsonl

__all__ = [
    "FlightRecorder",
    "FLIGHT_ENV_VAR",
    "DEFAULT_LIMIT",
    "configure",
    "get_recorder",
    "disable_recording",
    "record_auto",
    "read_records",
    "calibrate",
    "format_report",
]

#: environment variable that enables recording without code changes
FLIGHT_ENV_VAR = "REPRO_FLIGHT_PATH"

#: default ring size (records kept after compaction)
DEFAULT_LIMIT = 2048

#: schema tag on every record
RECORD_SCHEMA = "repro-flight/v1"


class FlightRecorder:
    """Append-only JSONL ring file of ``auto`` resolutions.

    Appends are one ``open("a")`` + one line (crash-safe: a torn tail is
    skipped by :func:`read_records` via the robust ``read_jsonl``).  Every
    ``limit`` appends the file is compacted to the most recent ``limit``
    records via a temp-file rename, so it never exceeds ``2 * limit``
    lines and the recorder can run forever under a service without
    unbounded growth.
    """

    def __init__(self, path: Union[str, Path],
                 limit: int = DEFAULT_LIMIT) -> None:
        if limit < 1:
            raise ValueError("flight recorder limit must be >= 1")
        self.path = Path(path)
        self.limit = int(limit)
        self._lock = threading.Lock()
        self._appended = 0

    def record(self, entry: dict) -> None:
        """Append one record, compacting the ring when oversized."""
        entry = {"schema": RECORD_SCHEMA, "unix_time": time.time(), **entry}
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(line + "\n")
            self._appended += 1
            # amortized size check: only count lines every `limit` appends
            if self._appended % self.limit == 0:
                self._maybe_compact()

    def _maybe_compact(self) -> None:
        records = read_jsonl(self.path)
        if len(records) <= self.limit:
            return
        keep = records[-self.limit:]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w") as fh:
            for rec in keep:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        tmp.replace(self.path)


# ----------------------------------------------------------------------
# process-wide recorder (mirrors the telemetry.get() pattern)
# ----------------------------------------------------------------------
_LOCK = threading.Lock()
_RECORDER: Optional[FlightRecorder] = None
_ENV_CHECKED = False


def configure(path: Union[str, Path],
              limit: int = DEFAULT_LIMIT) -> FlightRecorder:
    """Start recording auto resolutions to ``path``."""
    global _RECORDER, _ENV_CHECKED
    with _LOCK:
        _RECORDER = FlightRecorder(path, limit)
        _ENV_CHECKED = True
        return _RECORDER


def disable_recording() -> None:
    """Stop recording (existing files are left in place)."""
    global _RECORDER, _ENV_CHECKED
    with _LOCK:
        _RECORDER = None
        _ENV_CHECKED = True


def get_recorder() -> Optional[FlightRecorder]:
    """The active recorder, honouring ``REPRO_FLIGHT_PATH`` lazily."""
    global _RECORDER, _ENV_CHECKED
    with _LOCK:
        if _RECORDER is None and not _ENV_CHECKED:
            _ENV_CHECKED = True
            env = os.environ.get(FLIGHT_ENV_VAR)
            if env:
                _RECORDER = FlightRecorder(env)
        return _RECORDER


def record_auto(*, n: int, nnz: int, n_components: int,
                estimates: Dict[str, float], chosen: str,
                actual_wall_ms: float,
                max_component: Optional[int] = None,
                scenario: Optional[str] = None,
                transform_ms: Optional[float] = None) -> None:
    """Record one ``auto`` resolution (no-op when recording is off).

    ``mispick_margin`` is the *raw-estimate* slack: best rejected estimate
    minus the chosen estimate (positive = the model was confident).  The
    calibrated verdict comes later, from :func:`calibrate`.
    ``max_component`` (largest connected component) and ``scenario`` (the
    pattern's scenario family per :func:`repro.matrices.scenarios.classify`
    — the pipeline only classifies when a recorder is active) let
    :func:`calibrate` break the mispick rate down by graph shape, so a
    cost model that is well calibrated on meshes cannot hide a systematic
    power-law mispick inside the aggregate rate.  ``transform_ms`` is the
    measured wall-clock of the pre-BFS transform phase (the power-law hub
    pass) — recorded so calibration can later price the transform itself
    into ``method="auto"``, not just its effect on level counts.
    """
    rec = get_recorder()
    if rec is None:
        return
    others = [v for k, v in estimates.items() if k != chosen]
    margin = (min(others) - estimates[chosen]) if others else None
    entry = {
        "n": int(n),
        "nnz": int(nnz),
        "n_components": int(n_components),
        "estimates": {k: float(v) for k, v in estimates.items()},
        "chosen": chosen,
        "actual_wall_ms": float(actual_wall_ms),
        "mispick_margin": margin,
    }
    if max_component is not None:
        entry["max_component"] = int(max_component)
    if scenario is not None:
        entry["scenario"] = str(scenario)
    if transform_ms is not None:
        entry["transform_ms"] = float(transform_ms)
    rec.record(entry)


def read_records(path: Union[str, Path]) -> List[dict]:
    """Flight records from ``path`` (corrupt lines skipped, not raised)."""
    return [r for r in read_jsonl(path)
            if r.get("schema") == RECORD_SCHEMA and "chosen" in r]


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def calibrate(records: List[dict], *, tie_epsilon: float = 0.05) -> dict:
    """Predicted-vs-actual report over a recorded session.

    Cost estimates are abstract cycles, not milliseconds, so each backend
    first gets a fitted *scale* (sum of actual ms over sum of chosen-case
    estimates — a least-absolute-error rate fit).  A pick counts as a
    **mispick** when some other candidate's calibrated prediction
    undercuts the chosen backend's calibrated prediction by more than
    ``tie_epsilon`` (relative): the model, corrected for its own unit
    error, still preferred the wrong backend.  Backends never chosen
    inherit the mean scale of the fitted ones (their estimates are in the
    same cycle currency).

    Records that carry a ``scenario`` field (see :func:`record_auto`) are
    additionally aggregated into ``report["scenarios"]`` — picks, mispicks
    and mispick rate per scenario family — the per-shape breakdown
    ``repro telemetry calibrate`` prints and
    ``benchmarks/check_regressions.py`` gates.
    """
    report: dict = {
        "records": len(records),
        "tie_epsilon": tie_epsilon,
        "backends": {},
        "scenarios": {},
        "mispicks": 0,
        "mispick_rate": 0.0,
    }
    if not records:
        return report

    sums: Dict[str, List[float]] = {}
    for rec in records:
        chosen = rec["chosen"]
        est = rec["estimates"].get(chosen)
        if est and est > 0:
            acc = sums.setdefault(chosen, [0.0, 0.0])
            acc[0] += rec["actual_wall_ms"]
            acc[1] += est
    scales = {b: ms / est for b, (ms, est) in sums.items() if est > 0}
    default_scale = (sum(scales.values()) / len(scales)) if scales else 1.0

    per_backend: Dict[str, dict] = {}
    per_scenario: Dict[str, dict] = {}
    total_mispicks = 0
    for rec in records:
        chosen = rec["chosen"]
        estimates = rec["estimates"]
        scale = scales.get(chosen, default_scale)
        predicted_ms = estimates.get(chosen, 0.0) * scale
        actual_ms = rec["actual_wall_ms"]

        best_other = None
        for cand, est in estimates.items():
            if cand == chosen:
                continue
            pred = est * scales.get(cand, default_scale)
            if best_other is None or pred < best_other[1]:
                best_other = (cand, pred)
        mispick = (
            best_other is not None
            and best_other[1] < predicted_ms * (1.0 - tie_epsilon)
        )

        stats = per_backend.setdefault(chosen, {
            "picks": 0, "mispicks": 0,
            "predicted_ms_sum": 0.0, "actual_ms_sum": 0.0,
            "abs_err_ms_sum": 0.0,
        })
        stats["picks"] += 1
        stats["predicted_ms_sum"] += predicted_ms
        stats["actual_ms_sum"] += actual_ms
        stats["abs_err_ms_sum"] += abs(predicted_ms - actual_ms)
        if mispick:
            stats["mispicks"] += 1
            total_mispicks += 1

        scenario = rec.get("scenario")
        if scenario:
            fam = per_scenario.setdefault(
                scenario, {"picks": 0, "mispicks": 0}
            )
            fam["picks"] += 1
            if mispick:
                fam["mispicks"] += 1

    for backend, stats in per_backend.items():
        picks = stats["picks"]
        report["backends"][backend] = {
            "picks": picks,
            "scale_ms_per_cycle": scales.get(backend, default_scale),
            "mean_predicted_ms": stats["predicted_ms_sum"] / picks,
            "mean_actual_ms": stats["actual_ms_sum"] / picks,
            "mean_abs_err_ms": stats["abs_err_ms_sum"] / picks,
            "mispicks": stats["mispicks"],
            "mispick_rate": stats["mispicks"] / picks,
        }
    for scenario, fam in sorted(per_scenario.items()):
        report["scenarios"][scenario] = {
            "picks": fam["picks"],
            "mispicks": fam["mispicks"],
            "mispick_rate": fam["mispicks"] / fam["picks"],
        }
    report["mispicks"] = total_mispicks
    report["mispick_rate"] = total_mispicks / len(records)
    return report


def format_report(report: dict) -> str:
    """The calibration report as an aligned, human-readable table."""
    lines = [
        f"flight records : {report['records']}",
        f"tie epsilon    : {report['tie_epsilon']:.2f}",
        f"overall mispick: {report['mispicks']} "
        f"({report['mispick_rate']:.1%})",
    ]
    if report["backends"]:
        lines.append("")
        header = (f"{'backend':<12} {'picks':>5} {'pred ms':>9} "
                  f"{'actual ms':>9} {'|err| ms':>9} {'mispick':>8}")
        lines.append(header)
        lines.append("-" * len(header))
        for backend in sorted(report["backends"]):
            s = report["backends"][backend]
            lines.append(
                f"{backend:<12} {s['picks']:>5} "
                f"{s['mean_predicted_ms']:>9.3f} "
                f"{s['mean_actual_ms']:>9.3f} "
                f"{s['mean_abs_err_ms']:>9.3f} "
                f"{s['mispick_rate']:>7.1%}"
            )
    if report.get("scenarios"):
        lines.append("")
        header = f"{'scenario':<16} {'picks':>5} {'mispicks':>8} {'rate':>7}"
        lines.append(header)
        lines.append("-" * len(header))
        for scenario in sorted(report["scenarios"]):
            s = report["scenarios"][scenario]
            lines.append(
                f"{scenario:<16} {s['picks']:>5} {s['mispicks']:>8} "
                f"{s['mispick_rate']:>6.1%}"
            )
    return "\n".join(lines)
