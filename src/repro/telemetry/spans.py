"""Thread-safe hierarchical wall-clock span tracer.

Real runs (the OS-thread backend, the public API pipeline, the solver)
cannot use the simulator's cycle accounting — they need *wall-clock* spans.
:class:`Tracer` records ``perf_counter_ns`` intervals as a tree (each thread
keeps its own open-span stack, so nesting is captured without any global
coordination) and is safe to use from many threads at once.

The disabled path is near-free: :meth:`Tracer.span` returns a shared no-op
context manager without allocating, so instrumentation can stay in hot code
permanently.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SpanRecord", "Tracer", "NULL_SPAN"]

#: thread-local holder of the active :class:`~repro.telemetry.context.TraceContext`
#: (managed by :mod:`repro.telemetry.context`; kept here so the span hot path
#: reads it without an import cycle)
_CONTEXT = threading.local()


def current_trace():
    """The :class:`TraceContext` active on this thread, or ``None``."""
    return getattr(_CONTEXT, "value", None)


# ----------------------------------------------------------------------
# sampling-profiler attribution mirrors
# ----------------------------------------------------------------------
# The span stack and active TraceContext live in thread-locals, which the
# profiler's sampler thread cannot read. While a profiler runs
# (``_MIRROR_ON``), span enter/exit and context activation additionally
# maintain these plain ``{thread_id: ...}`` dicts; each individual dict /
# list operation is atomic under the GIL, so the sampler reads them
# lock-free. When no profiler runs the only cost on the span hot path is
# one module-global bool check.

_MIRROR_ON = False
#: thread id -> list of ``(span_name, category)``, innermost last
_SPAN_MIRROR: Dict[int, List[tuple]] = {}
#: thread id -> active TraceContext
_CTX_MIRROR: Dict[int, Any] = {}


def _set_mirror(on: bool) -> None:
    """Toggle mirror maintenance (called by the profiler's start/stop)."""
    global _MIRROR_ON
    _MIRROR_ON = bool(on)
    if not on:
        _SPAN_MIRROR.clear()
        _CTX_MIRROR.clear()


@dataclass
class SpanRecord:
    """One finished wall-clock span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_ns: int
    duration_ns: int
    thread_id: int
    #: logical worker lane (thread backend); ``None`` = main/pipeline code
    worker: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: request trace id stamped from the active :class:`TraceContext`
    trace_id: Optional[str] = None
    #: OS process that recorded the span (cross-process attribution)
    pid: Optional[int] = None

    @property
    def end_ns(self) -> int:
        """Exclusive end timestamp (``start_ns + duration_ns``)."""
        return self.start_ns + self.duration_ns

    def to_event(self) -> dict:
        """JSON-serializable event record (the JSONL ``span`` schema)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "start_ns": self.start_ns,
            "dur_ns": self.duration_ns,
            "tid": self.thread_id,
            "worker": self.worker,
            "attrs": self.attrs,
            "trace_id": self.trace_id,
            "pid": self.pid,
        }

    @classmethod
    def from_event(cls, event: dict) -> "SpanRecord":
        """Rebuild a record from its :meth:`to_event` dict (merge path)."""
        return cls(
            span_id=event["id"],
            parent_id=event.get("parent"),
            name=event["name"],
            category=event.get("cat", "phase"),
            start_ns=event["start_ns"],
            duration_ns=event["dur_ns"],
            thread_id=event.get("tid", 0),
            worker=event.get("worker"),
            attrs=dict(event.get("attrs") or {}),
            trace_id=event.get("trace_id"),
            pid=event.get("pid"),
        )


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Ignore attributes (disabled mode)."""

    @property
    def span_id(self) -> None:
        """No id while disabled (keeps caller code branch-free)."""
        return None


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager measuring one span on the owning thread's stack."""

    __slots__ = ("_tracer", "_name", "_category", "_worker", "_attrs",
                 "_span_id", "_parent_id", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 worker: Optional[int], attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._worker = worker
        self._attrs = attrs

    def set(self, **attrs) -> None:
        """Attach extra attributes to the span before it closes."""
        self._attrs.update(attrs)

    @property
    def span_id(self) -> int:
        """The id assigned at ``__enter__`` (parent for merged sub-traces)."""
        return self._span_id

    def __enter__(self) -> "_ActiveSpan":
        tr = self._tracer
        stack = tr._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = next(tr._ids)
        stack.append(self._span_id)
        if _MIRROR_ON:
            _SPAN_MIRROR.setdefault(threading.get_ident(), []).append(
                (self._name, self._category)
            )
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter_ns()
        tr = self._tracer
        stack = tr._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        if _MIRROR_ON:
            mirror = _SPAN_MIRROR.get(threading.get_ident())
            if mirror:
                mirror.pop()
        ctx = getattr(_CONTEXT, "value", None)
        rec = SpanRecord(
            span_id=self._span_id,
            parent_id=self._parent_id,
            name=self._name,
            category=self._category,
            start_ns=self._start_ns - tr.epoch_ns,
            duration_ns=end - self._start_ns,
            thread_id=threading.get_ident(),
            worker=self._worker,
            attrs=self._attrs,
            trace_id=ctx.trace_id if ctx is not None else None,
            pid=os.getpid(),
        )
        with tr._lock:
            tr._records.append(rec)
        return False


class Tracer:
    """Collects :class:`SpanRecord` trees from any number of threads.

    Timestamps are stored relative to :attr:`epoch_ns` (the construction or
    last :meth:`clear` time) so exported traces start near zero.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.epoch_ns = time.perf_counter_ns()
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, *, category: str = "phase",
             worker: Optional[int] = None, **attrs):
        """Open a wall-clock span as a context manager.

        Returns the shared :data:`NULL_SPAN` when tracing is disabled —
        callers can leave ``with tracer.span(...)`` in hot paths.
        """
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, category, worker, attrs)

    def records(self) -> List[SpanRecord]:
        """Snapshot of all finished spans (copy; safe to iterate)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop all records and restart the epoch."""
        with self._lock:
            self._records.clear()
            self.epoch_ns = time.perf_counter_ns()

    def phase_totals(self) -> Dict[str, int]:
        """Total nanoseconds per span name (wall, summed over records)."""
        out: Dict[str, int] = {}
        for rec in self.records():
            out[rec.name] = out.get(rec.name, 0) + rec.duration_ns
        return out
