"""Persistent run-history store and statistical trend verdicts.

Every benchmark session produces point-in-time ``BENCH_*.json`` artifacts;
this module turns them into a *trajectory*: an append-only, schema-versioned
JSONL store (``benchmarks/results/history.jsonl`` by convention) where each
line is one complete run — every bench's wall time, the summed counter
snapshot, the flight-recorder calibration summary — stamped with
``git_sha`` / ``branch`` / ``hostname`` / ``timestamp``.

On top of the store sits a noise-aware regression engine.  A static
baseline cannot tell a real regression from run-to-run jitter; a rolling
window can.  For each metric the last ``window`` historical samples give a
median and a MAD (median absolute deviation), and the fresh value gets a
robust z-score::

    z = (current - median) / (1.4826 * MAD)

A verdict is ``FAIL`` only when the z-score clears ``z_fail`` *and* the
current/median ratio clears ``ratio_guard`` (so a microsecond-stable metric
with near-zero MAD cannot fail on an invisible absolute change), ``WARN``
between ``z_warn`` and ``z_fail``, ``IMPROVED`` on a symmetric negative
excursion, ``SKIP`` until ``min_samples`` historical runs exist, and
``PASS`` otherwise.  ``repro telemetry trend`` renders the verdicts with
ASCII sparklines and ``benchmarks/check_regressions.py`` consumes the same
engine for its gate.
"""

from __future__ import annotations

import datetime as _dt
import json
import platform
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.telemetry.events import git_sha, host_info, read_jsonl

__all__ = [
    "HISTORY_SCHEMA",
    "SCHEMA_VERSION",
    "HistoryStore",
    "TrendVerdict",
    "build_run_record",
    "evaluate_trends",
    "read_history",
    "render_trends",
    "robust_verdict",
    "runs_since",
    "sparkline",
    "verdict_document",
]

#: schema tag on every history record
HISTORY_SCHEMA = "repro-history/v1"

#: bumped whenever the record layout changes incompatibly
SCHEMA_VERSION = 1

#: robust z-score above which a metric is suspicious / failing
DEFAULT_Z_WARN = 3.5
DEFAULT_Z_FAIL = 6.0

#: minimum current/median ratio for a FAIL — a z-score alone can explode
#: when the window's MAD is tiny; a real regression must also *look* slower
DEFAULT_RATIO_GUARD = 1.15

#: MAD floor as a fraction of the median (stabilizes jitter-free windows)
DEFAULT_REL_FLOOR = 0.025

#: rolling-window length and the sample count required before enforcement
DEFAULT_WINDOW = 20
DEFAULT_MIN_SAMPLES = 5

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _git_branch(default: str = "unknown") -> str:
    """Current branch name, ``default`` outside a work tree / detached CI."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--abbrev-ref", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    name = out.stdout.strip()
    return name if out.returncode == 0 and name else default


def _utc_timestamp(unix_time: float) -> str:
    """ISO-8601 UTC timestamp for a POSIX time."""
    return _dt.datetime.fromtimestamp(
        unix_time, tz=_dt.timezone.utc
    ).isoformat(timespec="seconds")


def stamp_provenance(record: dict, *, unix_time: Optional[float] = None) -> dict:
    """Return ``record`` with the per-run provenance fields filled in.

    Adds ``schema`` / ``schema_version`` / ``git_sha`` / ``branch`` /
    ``hostname`` / ``unix_time`` / ``timestamp`` (ISO-8601 UTC) without
    overwriting values the caller already supplied.
    """
    now = time.time() if unix_time is None else unix_time
    stamped = {
        "schema": HISTORY_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "git_sha": git_sha(),
        "branch": _git_branch(),
        "hostname": platform.node() or "unknown",
        "unix_time": now,
        "timestamp": _utc_timestamp(now),
    }
    stamped.update(record)
    return stamped


def build_run_record(
    results_dir: Union[str, Path],
    *,
    flight_path: Optional[Union[str, Path]] = None,
    unix_time: Optional[float] = None,
) -> dict:
    """One history record summarizing a ``benchmarks/results`` directory.

    Ingests every ``BENCH_*.json`` (per-bench ``wall_ms`` plus matrix /
    method provenance), sums every payload's counter snapshot into one
    run-level ``counters`` aggregate (the offline SLO input — see
    :mod:`repro.telemetry.slo`), and, when a flight-recorder file is
    present, folds in the calibration summary (``records`` /
    ``mispick_rate``).
    """
    results_dir = Path(results_dir)
    benches: Dict[str, dict] = {}
    counters: Dict[str, float] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        name = payload.get("bench") or path.stem[len("BENCH_"):]
        entry = {"wall_ms": payload.get("wall_ms")}
        for key in ("matrix", "method"):
            if payload.get(key) is not None:
                entry[key] = payload[key]
        benches[name] = entry
        for cname, value in (payload.get("counters") or {}).items():
            counters[cname] = counters.get(cname, 0) + value

    calibration = None
    flight_file = (
        Path(flight_path) if flight_path is not None
        else results_dir / "flight.jsonl"
    )
    if flight_file.exists():
        from repro.telemetry import flight

        records = flight.read_records(flight_file)
        if records:
            report = flight.calibrate(records)
            calibration = {
                "records": report["records"],
                "mispicks": report["mispicks"],
                "mispick_rate": report["mispick_rate"],
            }

    return stamp_provenance(
        {
            "host": host_info(),
            "benches": benches,
            "counters": counters,
            "calibration": calibration,
        },
        unix_time=unix_time,
    )


class HistoryStore:
    """Append-only, schema-versioned JSONL store of run records.

    Appends are one locked ``open("a")`` + one line — safe under
    concurrent writers within a process and crash-tolerant across them
    (a torn tail is skipped by the robust ``read_jsonl`` on read).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def append(self, record: dict) -> dict:
        """Stamp provenance onto ``record`` (if absent) and append it."""
        if record.get("schema") != HISTORY_SCHEMA:
            record = stamp_provenance(record)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(line + "\n")
        return record

    def read(self) -> List[dict]:
        """Every stored run, oldest first (corrupt lines skipped)."""
        if not self.path.exists():
            return []
        return read_history(self.path)

    def __len__(self) -> int:
        return len(self.read())


def read_history(path: Union[str, Path]) -> List[dict]:
    """History records from ``path``, schema-filtered, oldest first."""
    return [
        r for r in read_jsonl(path)
        if r.get("schema") == HISTORY_SCHEMA and "benches" in r
    ]


def runs_since(runs: Sequence[dict], sha: str) -> List[dict]:
    """The suffix of ``runs`` starting at the first record whose
    ``git_sha`` begins with ``sha`` (the whole list when absent)."""
    for i, run in enumerate(runs):
        if str(run.get("git_sha", "")).startswith(sha):
            return list(runs[i:])
    return list(runs)


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
def _median(xs: Sequence[float]) -> float:
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def robust_verdict(
    current: float,
    samples: Sequence[float],
    *,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    z_warn: float = DEFAULT_Z_WARN,
    z_fail: float = DEFAULT_Z_FAIL,
    ratio_guard: float = DEFAULT_RATIO_GUARD,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> dict:
    """Noise-aware verdict of ``current`` against historical ``samples``.

    Returns ``{status, z, ratio, median, mad, samples}`` where ``status``
    is ``SKIP`` (fewer than ``min_samples`` samples), ``FAIL`` (robust
    z-score above ``z_fail`` *and* ratio above ``ratio_guard``), ``WARN``
    (z-score above ``z_warn``), ``IMPROVED`` (z-score below ``-z_warn``)
    or ``PASS``.
    """
    n = len(samples)
    if n < min_samples:
        return {
            "status": "SKIP", "z": None, "ratio": None,
            "median": _median(samples) if samples else None,
            "mad": None, "samples": n,
        }
    med = _median(samples)
    mad = _median([abs(x - med) for x in samples])
    # 1.4826 * MAD estimates sigma for normal noise; the relative floor
    # keeps jitter-free windows (MAD == 0) from turning any wobble into
    # an infinite z-score
    scale = max(1.4826 * mad, rel_floor * abs(med), 1e-12)
    z = (current - med) / scale
    ratio = current / med if med else float("inf")
    if z > z_fail and ratio > ratio_guard:
        status = "FAIL"
    elif z > z_warn:
        status = "WARN"
    elif z < -z_warn:
        status = "IMPROVED"
    else:
        status = "PASS"
    return {
        "status": status, "z": z, "ratio": ratio,
        "median": med, "mad": mad, "samples": n,
    }


@dataclass
class TrendVerdict:
    """Per-metric outcome of :func:`evaluate_trends`."""

    bench: str
    metric: str
    current: Optional[float]
    status: str
    z: Optional[float] = None
    ratio: Optional[float] = None
    median: Optional[float] = None
    mad: Optional[float] = None
    samples: int = 0
    series: List[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        """The verdict as a plain JSON-serializable mapping."""
        return {
            "bench": self.bench,
            "metric": self.metric,
            "current": self.current,
            "status": self.status,
            "z": self.z,
            "ratio": self.ratio,
            "median": self.median,
            "mad": self.mad,
            "samples": self.samples,
        }


def metric_series(
    runs: Sequence[dict], bench: str, metric: str = "wall_ms"
) -> List[float]:
    """``metric`` values of ``bench`` across ``runs`` (absent runs skipped)."""
    out: List[float] = []
    for run in runs:
        value = (run.get("benches") or {}).get(bench, {}).get(metric)
        if value is not None:
            out.append(float(value))
    return out


def evaluate_trends(
    runs: Sequence[dict],
    *,
    metric: str = "wall_ms",
    window: int = DEFAULT_WINDOW,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    z_warn: float = DEFAULT_Z_WARN,
    z_fail: float = DEFAULT_Z_FAIL,
    ratio_guard: float = DEFAULT_RATIO_GUARD,
) -> List[TrendVerdict]:
    """Trend verdicts for the newest run in ``runs`` against its history.

    The newest run supplies the "current" value per bench; the preceding
    (up to ``window``) runs supply the rolling sample window.  Benches that
    vanished from the newest run are reported as ``MISSING``.
    """
    if not runs:
        return []
    latest = runs[-1]
    prior = list(runs[:-1])
    names = sorted(
        set(latest.get("benches") or {})
        | {b for r in prior for b in (r.get("benches") or {})}
    )
    verdicts: List[TrendVerdict] = []
    for bench in names:
        series = metric_series(prior, bench, metric)[-window:]
        current = (latest.get("benches") or {}).get(bench, {}).get(metric)
        if current is None:
            verdicts.append(TrendVerdict(
                bench=bench, metric=metric, current=None,
                status="MISSING", samples=len(series), series=series,
            ))
            continue
        v = robust_verdict(
            float(current), series, min_samples=min_samples,
            z_warn=z_warn, z_fail=z_fail, ratio_guard=ratio_guard,
        )
        verdicts.append(TrendVerdict(
            bench=bench, metric=metric, current=float(current),
            status=v["status"], z=v["z"], ratio=v["ratio"],
            median=v["median"], mad=v["mad"], samples=v["samples"],
            series=series + [float(current)],
        ))
    return verdicts


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def sparkline(values: Sequence[float], width: int = 16) -> str:
    """``values`` as a fixed-width block-glyph sparkline (newest right)."""
    if not values:
        return " " * width
    vals = list(values)[-width:]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    glyphs = []
    for v in vals:
        idx = (
            0 if span == 0
            else int((v - lo) / span * (len(_SPARK_GLYPHS) - 1))
        )
        glyphs.append(_SPARK_GLYPHS[idx])
    return "".join(glyphs).rjust(width)


def render_trends(verdicts: Sequence[TrendVerdict], *,
                  spark_width: int = 16) -> str:
    """The verdict list as an aligned table with sparklines."""
    name_w = max([len(v.bench) for v in verdicts] + [len("benchmark")])
    header = (
        f"{'benchmark':<{name_w}} {'current':>10} {'median':>10} "
        f"{'ratio':>6} {'z':>6} {'n':>3} {'trend':>{spark_width}}  verdict"
    )
    lines = [header, "-" * len(header)]
    for v in verdicts:
        cur = "-" if v.current is None else f"{v.current:10.2f}"
        med = "-" if v.median is None else f"{v.median:10.2f}"
        ratio = "-" if v.ratio is None else f"{v.ratio:6.2f}"
        z = "-" if v.z is None else f"{v.z:6.1f}"
        lines.append(
            f"{v.bench:<{name_w}} {cur:>10} {med:>10} {ratio:>6} {z:>6} "
            f"{v.samples:>3} {sparkline(v.series, spark_width)}  {v.status}"
        )
    return "\n".join(lines)


def verdict_document(
    verdicts: Sequence[TrendVerdict],
    *,
    metric: str = "wall_ms",
    history_path: Optional[Union[str, Path]] = None,
) -> dict:
    """Machine-readable verdict summary (what ``trend --check`` emits)."""
    by_status: Dict[str, int] = {}
    for v in verdicts:
        by_status[v.status] = by_status.get(v.status, 0) + 1
    return stamp_provenance({
        "kind": "trend-verdict",
        "metric": metric,
        "history": str(history_path) if history_path else None,
        "verdicts": [v.to_dict() for v in verdicts],
        "by_status": by_status,
        "failed": sorted(v.bench for v in verdicts if v.status == "FAIL"),
        "ok": not any(v.status == "FAIL" for v in verdicts),
    })
