"""Exporters: real wall-clock spans in the simulator's trace formats.

The simulated engine already renders ``(start, worker, stage, cycles)``
traces as ASCII Gantt charts and Chrome-tracing JSON
(:mod:`repro.machine.tracing`).  This module maps :class:`SpanRecord` lists
onto that same representation so *real* thread activity (the OS-thread
backend, API phases, the solver) renders in the identical tooling —
one mental model for both machines.

Lane assignment: spans carrying a ``worker`` id get that lane; anonymous
spans share one lane per OS thread, appended after the worker lanes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.machine.tracing import TraceEvent, ascii_gantt
from repro.telemetry.spans import SpanRecord

__all__ = [
    "lane_assignment",
    "spans_to_trace_events",
    "spans_to_chrome_tracing",
    "spans_gantt",
    "phase_totals_ms",
    "profile_to_collapsed",
    "profile_to_speedscope",
]


def lane_assignment(records: Sequence[SpanRecord]) -> Dict[int, str]:
    """Dense ``lane index -> label`` map for a span list.

    Worker lanes come first (``worker N``), then one lane per distinct
    anonymous OS thread (``thread K``), in order of first appearance.
    """
    workers = sorted({r.worker for r in records if r.worker is not None})
    lanes = {i: f"worker {w}" for i, w in enumerate(workers)}
    next_lane = len(lanes)
    seen_tids: Dict[int, int] = {}
    for r in records:
        if r.worker is None and r.thread_id not in seen_tids:
            seen_tids[r.thread_id] = next_lane
            lanes[next_lane] = f"thread {len(seen_tids) - 1}"
            next_lane += 1
    return lanes


def _lane_of(records: Sequence[SpanRecord]) -> Dict[Union[int, Tuple[str, int]], int]:
    workers = sorted({r.worker for r in records if r.worker is not None})
    lane: Dict[Union[int, Tuple[str, int]], int] = {
        ("w", w): i for i, w in enumerate(workers)
    }
    next_lane = len(workers)
    for r in records:
        if r.worker is None and ("t", r.thread_id) not in lane:
            lane[("t", r.thread_id)] = next_lane
            next_lane += 1
    return lane


def spans_to_trace_events(
    records: Sequence[SpanRecord], *, leaves_only: bool = True
) -> List[TraceEvent]:
    """Convert spans to simulator trace tuples ``(start, lane, name, dur)``.

    Times are microseconds from the tracer epoch.  With ``leaves_only``
    (default) enclosing spans are dropped where a child covers them, keeping
    Gantt columns unambiguous: a parent is kept only if no record names it
    as ``parent_id``.
    """
    if not records:
        return []
    lane = _lane_of(records)
    parents = {r.parent_id for r in records if r.parent_id is not None}
    events: List[TraceEvent] = []
    for r in records:
        if leaves_only and r.span_id in parents:
            continue
        key = ("w", r.worker) if r.worker is not None else ("t", r.thread_id)
        events.append(
            (r.start_ns / 1e3, lane[key], r.name, r.duration_ns / 1e3)
        )
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def spans_to_chrome_tracing(
    records: Sequence[SpanRecord],
    path: Union[str, Path],
    *,
    process_name: str = "repro",
) -> None:
    """Write spans as Chrome-tracing JSON (open in Perfetto).

    Emits ``"ph": "M"`` ``thread_name`` metadata so lanes read
    ``worker N`` / ``thread K`` instead of bare tids, then one complete
    (``"ph": "X"``) event per span with its attributes under ``args``.
    """
    lane = _lane_of(records)
    labels = lane_assignment(records)
    events: List[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for idx in sorted(labels):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": idx,
            "args": {"name": labels[idx]},
        })
    for r in records:
        key = ("w", r.worker) if r.worker is not None else ("t", r.thread_id)
        events.append({
            "name": r.name,
            "cat": r.category,
            "ph": "X",
            "ts": r.start_ns / 1e3,          # ns -> µs
            "dur": r.duration_ns / 1e3,
            "pid": 0,
            "tid": lane[key],
            "args": dict(r.attrs, dur_ns=r.duration_ns),
        })
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload))


def spans_gantt(records: Sequence[SpanRecord], *, width: int = 100) -> str:
    """ASCII Gantt of real spans (one lane per worker/thread) plus labels."""
    if not records:
        return "(empty trace)"
    events = spans_to_trace_events(records)
    labels = lane_assignment(records)
    chart = ascii_gantt(events, width=width, n_workers=len(labels))
    # the simulator chart is cycle-denominated; relabel for wall time
    chart = chart.replace("simulated Gantt", "wall-clock Gantt").replace(
        "cycles,", "µs,", 1
    )
    lanes = "  ".join(f"w{i}={name}" for i, name in sorted(labels.items()))
    return f"{chart}\n     lanes: {lanes}"


def phase_totals_ms(records: Sequence[SpanRecord]) -> Dict[str, float]:
    """Total wall milliseconds per span name (all lanes summed)."""
    out: Dict[str, float] = {}
    for r in records:
        out[r.name] = out.get(r.name, 0.0) + r.duration_ns / 1e6
    return out


# ----------------------------------------------------------------------
# sampling-profiler exports (see repro.telemetry.profiler)
# ----------------------------------------------------------------------

def profile_to_collapsed(profile: Dict[str, int]) -> str:
    """Folded counts in Brendan Gregg's collapsed-stack text format.

    One ``seg;seg;seg count`` line per distinct stack, sorted, ready for
    ``flamegraph.pl`` / speedscope / inferno without any massaging.
    """
    lines = [f"{stack} {count}" for stack, count in sorted(profile.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def profile_to_speedscope(
    profile: Dict[str, int], *, name: str = "repro profile"
) -> dict:
    """Folded counts as a speedscope ``type="sampled"`` document.

    Weights are sample counts (``unit: "none"``); drop the JSON on
    https://www.speedscope.app to browse the flamegraph interactively.
    """
    frame_index: Dict[str, int] = {}
    frames: List[dict] = []
    samples: List[List[int]] = []
    weights: List[int] = []
    for stack, count in sorted(profile.items()):
        idxs = []
        for seg in stack.split(";"):
            if seg not in frame_index:
                frame_index[seg] = len(frames)
                frames.append({"name": seg})
            idxs.append(frame_index[seg])
        samples.append(idxs)
        weights.append(int(count))
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "exporter": "repro-telemetry",
        "name": name,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        ],
    }
