"""Unified telemetry for *real* runs: spans, counters, exporters.

The simulated machine measures itself (``machine/stats.py``,
``machine/tracing.py``); this package is the equivalent observability layer
for everything that runs on the actual hardware — the OS-thread backend, the
public API pipeline, the solver and the benchmark drivers.  It bundles:

* :mod:`repro.telemetry.spans` — thread-safe hierarchical wall-clock spans
  (``perf_counter_ns``), near-zero overhead while disabled;
* :mod:`repro.telemetry.metrics` — process-wide counters / gauges /
  histograms generalizing :class:`~repro.machine.stats.RunStats`;
* :mod:`repro.telemetry.events` — structured JSONL sink and reader;
* :mod:`repro.telemetry.export` — renders real spans in the simulator's
  ASCII-Gantt and Chrome-tracing/Perfetto formats;
* :mod:`repro.telemetry.context` — per-request :class:`TraceContext`
  propagated across threads and worker processes, with span/metric
  merging so one request yields one coherent trace;
* :mod:`repro.telemetry.prometheus` — text exposition + embedded
  ``/metrics`` endpoint for ``repro serve --listen``;
* :mod:`repro.telemetry.flight` — cost-model flight recorder and the
  ``repro telemetry calibrate`` predicted-vs-actual analysis;
* :mod:`repro.telemetry.history` — append-only run-history store and the
  noise-aware trend verdicts behind ``repro telemetry trend``;
* :mod:`repro.telemetry.slo` — declarative service-level objectives
  evaluated live (``/statusz`` health score, ``slo.*`` gauges) and
  offline against the history store.

Usage — everything hangs off one process-wide :class:`Telemetry` instance::

    from repro import telemetry

    telemetry.enable()
    res = repro.reorder(mat, method="threads")
    telemetry.get().write_jsonl("run.jsonl", meta={"matrix": "gupta3"})

Instrumented library code stays cheap when disabled: ``tel.span(...)``
returns a shared no-op context manager and counter lookups are guarded by
``tel.enabled`` checks at batch granularity.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.telemetry.spans import SpanRecord, Tracer, NULL_SPAN
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.events import (
    JsonlSink,
    git_sha,
    host_info,
    read_jsonl,
    write_events,
    SCHEMA,
)
from repro.telemetry.context import (
    TraceContext,
    WorkerReport,
    activate,
    current_trace,
    ensure_context,
    merge_worker_report,
    new_trace_context,
)
from repro.telemetry.prometheus import (
    MetricsServer,
    metric_inventory_table,
    render_prometheus,
)
from repro.telemetry.export import (
    lane_assignment,
    phase_totals_ms,
    profile_to_collapsed,
    profile_to_speedscope,
    spans_gantt,
    spans_to_chrome_tracing,
    spans_to_trace_events,
)
from repro.telemetry.profiler import (
    SamplingProfiler,
    get_profiler,
    profiler_stats,
    start_profiler,
    stop_profiler,
)
from repro.telemetry.critical_path import critical_path, format_report

__all__ = [
    "Telemetry",
    "get",
    "enable",
    "disable",
    "enabled",
    "reset",
    "span",
    "counter",
    "Tracer",
    "SpanRecord",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JsonlSink",
    "git_sha",
    "host_info",
    "read_jsonl",
    "write_events",
    "SCHEMA",
    "TraceContext",
    "WorkerReport",
    "activate",
    "current_trace",
    "ensure_context",
    "merge_worker_report",
    "new_trace_context",
    "MetricsServer",
    "metric_inventory_table",
    "render_prometheus",
    "lane_assignment",
    "phase_totals_ms",
    "profile_to_collapsed",
    "profile_to_speedscope",
    "spans_gantt",
    "spans_to_chrome_tracing",
    "spans_to_trace_events",
    "SamplingProfiler",
    "start_profiler",
    "stop_profiler",
    "get_profiler",
    "profiler_stats",
    "critical_path",
    "format_report",
]


class Telemetry:
    """One tracer + one metrics registry, enabled/disabled as a unit."""

    def __init__(self, enabled: bool = False) -> None:
        self.tracer = Tracer(enabled)
        self.metrics = MetricsRegistry()

    @property
    def enabled(self) -> bool:
        """Whether instrumentation should record anything."""
        return self.tracer.enabled

    def enable(self) -> None:
        """Turn recording on."""
        self.tracer.enabled = True

    def disable(self) -> None:
        """Turn recording off (already-collected data is kept)."""
        self.tracer.enabled = False

    def reset(self) -> None:
        """Drop all spans and metrics; keep the enabled flag."""
        self.tracer.clear()
        self.metrics.clear()

    # -- instrumentation shorthands ------------------------------------
    def span(self, name: str, **kw):
        """Open a span on the bundled tracer (no-op when disabled)."""
        return self.tracer.span(name, **kw)

    def counter(self, name: str) -> Counter:
        """The named counter from the bundled registry."""
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        """The named gauge from the bundled registry."""
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets=None) -> Histogram:
        """The named histogram from the bundled registry.

        ``buckets`` only takes effect at creation (registry semantics).
        """
        return self.metrics.histogram(name, buckets)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable state: per-phase wall ns + all instruments."""
        return {
            "phases_ns": self.tracer.phase_totals(),
            **self.metrics.to_dict(),
        }

    def write_jsonl(self, path: Union[str, Path],
                    meta: Optional[dict] = None) -> int:
        """Dump the session (meta + spans + metrics) to a JSONL file."""
        return write_events(path, self.tracer, self.metrics, meta=meta)

    def write_chrome_trace(self, path: Union[str, Path]) -> None:
        """Export all spans as Chrome-tracing JSON (Perfetto-loadable)."""
        spans_to_chrome_tracing(self.tracer.records(), path)


_GLOBAL = Telemetry(enabled=False)


def get() -> Telemetry:
    """The process-wide :class:`Telemetry` instance."""
    return _GLOBAL


def enable() -> None:
    """Enable the process-wide telemetry instance."""
    _GLOBAL.enable()


def disable() -> None:
    """Disable the process-wide telemetry instance."""
    _GLOBAL.disable()


def enabled() -> bool:
    """Whether the process-wide instance is recording."""
    return _GLOBAL.enabled


def reset() -> None:
    """Clear all process-wide spans and metrics."""
    _GLOBAL.reset()


def span(name: str, **kw):
    """Module-level shorthand for ``get().span(...)``."""
    return _GLOBAL.span(name, **kw)


def counter(name: str) -> Counter:
    """Module-level shorthand for ``get().counter(...)``."""
    return _GLOBAL.counter(name)
