"""Critical-path analysis and Amdahl-style what-if estimates over spans.

Span totals say how long each phase took; they do not say which chain of
spans actually *bounds* a request — a fork worker that ran concurrently
with three siblings contributes its full duration to the totals but only
its overlap to the wall. This module answers the bounding question over
a completed span tree (the paper's wall-clock decomposition, applied to
our own traces):

* :func:`critical_path` — walk backwards from the latest-ending span: at
  each level pick the child that ends last among those starting before
  the cursor, recurse into it, move the cursor to its start, and repeat
  with the remaining earlier-ending children.  Sequential phases all
  land on the path; concurrent siblings contribute only the one that
  bounds the parent.  Each path span's *self* time is its duration minus
  its chosen children's — the portion nothing below it explains.
* what-if estimates — for each name on the path, Amdahl's question: if
  this code were ``factor``× faster, how much shorter is the request?
  ``wall_reduction_pct = path_self * (1 - 1/factor) / wall * 100``.

Input is any iterable of :class:`~repro.telemetry.spans.SpanRecord` —
the live tracer's ``records()`` or a JSONL file's span events rebuilt
via :meth:`SpanRecord.from_event` (``repro telemetry critpath``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.spans import SpanRecord

__all__ = ["critical_path", "format_report"]


def _critical_children(
    children: Sequence[SpanRecord], window_end: int
) -> List[SpanRecord]:
    """Children on the critical path, chronological order.

    Backward walk: repeatedly take the latest-ending candidate that
    started before the cursor, then discard candidates it covers.
    """
    remaining = sorted(children, key=lambda r: (r.end_ns, r.start_ns))
    cursor = window_end
    chosen: List[SpanRecord] = []
    while remaining:
        pick = None
        for cand in reversed(remaining):
            if cand.start_ns < cursor:
                pick = cand
                break
        if pick is None:
            break
        chosen.append(pick)
        cursor = pick.start_ns
        remaining = [r for r in remaining if r.end_ns <= cursor]
    chosen.reverse()
    return chosen


def critical_path(
    records: Sequence[SpanRecord],
    *,
    trace_id: Optional[str] = None,
    what_if_factor: float = 2.0,
) -> Optional[dict]:
    """Critical path + rollups + what-if report, or ``None`` on no data.

    ``trace_id`` restricts the analysis to one request's spans (useful
    on a log that interleaves many).  Multiple roots (spans whose parent
    is absent) are handled by running the same backward walk over the
    roots themselves, so a phase sequence recorded without a wrapping
    request span still yields a path.
    """
    if what_if_factor <= 1.0:
        raise ValueError(
            f"what_if_factor must be > 1, got {what_if_factor}"
        )
    recs = [
        r for r in records
        if r.duration_ns >= 0 and (trace_id is None or r.trace_id == trace_id)
    ]
    if not recs:
        return None

    by_id = {r.span_id: r for r in recs}
    children: Dict[int, List[SpanRecord]] = {}
    roots: List[SpanRecord] = []
    for r in recs:
        if r.parent_id is not None and r.parent_id in by_id:
            children.setdefault(r.parent_id, []).append(r)
        else:
            roots.append(r)

    wall_ns = max(r.end_ns for r in roots) - min(r.start_ns for r in roots)
    wall_ns = max(wall_ns, 1)

    # walk the tree, collecting (span, path_self_ns) in pre-order
    path: List[tuple] = []

    def descend(span: SpanRecord) -> None:
        kids = _critical_children(children.get(span.span_id, []), span.end_ns)
        self_ns = span.duration_ns - sum(k.duration_ns for k in kids)
        path.append((span, max(self_ns, 0)))
        for k in kids:
            descend(k)

    for root in _critical_children(roots, max(r.end_ns for r in roots)):
        descend(root)

    # whole-tree self-time rollup by span name (duration minus children,
    # clamped: concurrent fork workers can sum past their dispatch span)
    tree_self_ms: Dict[str, float] = {}
    for r in recs:
        kid_ns = sum(k.duration_ns for k in children.get(r.span_id, []))
        self_ms = max(r.duration_ns - kid_ns, 0) / 1e6
        tree_self_ms[r.name] = tree_self_ms.get(r.name, 0.0) + self_ms

    path_rows = [
        {
            "name": span.name,
            "category": span.category,
            "span_id": span.span_id,
            "start_ms": round(span.start_ns / 1e6, 3),
            "duration_ms": round(span.duration_ns / 1e6, 3),
            "self_ms": round(self_ns / 1e6, 3),
            "self_pct": round(self_ns / wall_ns * 100.0, 1),
        }
        for span, self_ns in path
    ]

    path_self_ms: Dict[str, float] = {}
    for span, self_ns in path:
        path_self_ms[span.name] = (
            path_self_ms.get(span.name, 0.0) + self_ns / 1e6
        )

    dominant_name = max(path_self_ms, key=lambda k: path_self_ms[k])
    wall_ms = wall_ns / 1e6

    what_if = []
    shrink = 1.0 - 1.0 / what_if_factor
    for name, self_ms in sorted(
        path_self_ms.items(), key=lambda kv: kv[1], reverse=True
    ):
        saved_ms = self_ms * shrink
        what_if.append(
            {
                "name": name,
                "factor": what_if_factor,
                "saved_ms": round(saved_ms, 3),
                "new_wall_ms": round(wall_ms - saved_ms, 3),
                "wall_reduction_pct": round(saved_ms / wall_ms * 100.0, 1),
            }
        )

    return {
        "spans": len(recs),
        "trace_id": trace_id if trace_id is not None else roots[0].trace_id,
        "wall_ms": round(wall_ms, 3),
        "path": path_rows,
        "path_self_ms": {k: round(v, 3) for k, v in path_self_ms.items()},
        "tree_self_ms": {k: round(v, 3) for k, v in tree_self_ms.items()},
        "dominant_phase": dominant_name,
        "dominant_self_ms": round(path_self_ms[dominant_name], 3),
        "dominant_pct_of_wall": round(
            path_self_ms[dominant_name] / wall_ms * 100.0, 1
        ),
        "what_if": what_if,
    }


def format_report(report: dict) -> str:
    """Human-readable rendering of a :func:`critical_path` report."""
    lines = [
        f"critical path : {len(report['path'])} of {report['spans']} spans, "
        f"wall {report['wall_ms']:.2f} ms"
        + (f", trace {report['trace_id']}" if report["trace_id"] else ""),
    ]
    name_w = max((len(row["name"]) for row in report["path"]), default=4)
    for row in report["path"]:
        lines.append(
            f"  {row['name']:<{name_w}}  "
            f"dur {row['duration_ms']:>9.3f} ms  "
            f"self {row['self_ms']:>9.3f} ms ({row['self_pct']:>5.1f}%)"
        )
    lines.append(
        f"dominant phase: {report['dominant_phase']} — "
        f"{report['dominant_self_ms']:.2f} ms of path self time "
        f"({report['dominant_pct_of_wall']:.1f}% of wall)"
    )
    if report["what_if"]:
        factor = report["what_if"][0]["factor"]
        lines.append(f"what-if ({factor:g}x faster):")
        for row in report["what_if"]:
            lines.append(
                f"  {row['name']:<{name_w}}  "
                f"wall -{row['wall_reduction_pct']:.1f}% "
                f"({report['wall_ms']:.2f} -> {row['new_wall_ms']:.2f} ms)"
            )
    return "\n".join(lines)
