"""KKT-system generators (nlpkkt-family analogues).

The *nlpkkt120/160/200/240* matrices are KKT systems from 3-D PDE-constrained
optimization: a saddle-point block structure

    [ H   A^T ]
    [ A   0   ]

where ``H`` couples state variables on a 3-D grid and ``A`` is the
linearized constraint Jacobian (also grid structured).  They are the paper's
largest and best-scaling inputs: the 3-D structure yields very wide BFS
fronts, so CPU-BATCH reaches its top speedups there (≈4.9× at 24 threads).

``nlpkkt_like(m)`` builds the same block shape on an ``m³`` grid.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.matrices.generators import grid3d

__all__ = ["kkt_system", "nlpkkt_like"]


def kkt_system(h: CSRMatrix, a_rows: int, *, seed: int = 0) -> CSRMatrix:
    """Assemble the symmetric pattern of ``[[H, A^T], [A, 0]]``.

    ``A`` is generated as a sparse random constraint Jacobian with two
    entries per constraint row coupling nearby H-columns, mimicking finite
    difference constraints.
    """
    n_h = h.n
    rng = np.random.default_rng(seed)
    n = n_h + a_rows
    # H block (upper-left)
    h_rows = np.repeat(np.arange(n_h, dtype=np.int64), np.diff(h.indptr))
    h_cols = h.indices
    # A block: constraint i couples columns anchored near a grid position
    anchors = rng.integers(0, n_h, size=a_rows).astype(np.int64)
    offsets = rng.integers(1, 5, size=a_rows).astype(np.int64)
    c0 = anchors
    c1 = np.minimum(anchors + offsets, n_h - 1)
    a_r = np.concatenate([np.arange(a_rows, dtype=np.int64) + n_h] * 2)
    a_c = np.concatenate([c0, c1])
    rows = np.concatenate([h_rows, a_r, a_c])
    cols = np.concatenate([h_cols, a_c, a_r])
    keep = rows != cols
    return coo_to_csr(n, rows[keep], cols[keep])


def nlpkkt_like(m: int, *, seed: int = 0) -> CSRMatrix:
    """nlpkkt-style KKT system on an ``m × m × m`` grid.

    State block = 27-point 3-D stencil (nlpkkt matrices average ~27 nnz/row);
    constraint rows = one per interior grid node.
    """
    h = grid3d(m, m, m, stencil=27)
    interior = max(1, (m - 2) ** 3)
    return kkt_system(h, interior, seed=seed)
