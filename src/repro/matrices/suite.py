"""Test-set registry: laptop-scale analogues of the paper's Table I rows.

Every entry records (a) the paper's reference statistics and timings for the
SuiteSparse matrix (used by EXPERIMENTS.md to compare *shape*, never absolute
numbers), and (b) a generator producing a structurally analogous matrix at a
size that runs in seconds on one core.

The analogue choices and why they preserve the regime:

====================  ==========================================  ===========================
paper matrix          structural regime                           analogue
====================  ==========================================  ===========================
bcspwr10              power grid: low degree, narrow front        skinny kNN graph
bodyy4                2-D FEM mesh                                Delaunay triangulation
benzene               quantum chemistry: dense rows, wide front   27-pt 3-D grid
ncvxqp3               QP KKT system                               KKT on 2-D grid
ecology1              5-pt 2-D grid (exact structure)             5-pt 2-D grid
gupta3                few near-dense hub rows                     banded + hubs
SiO2                  chemistry, skewed valence                   27-pt 3-D grid + hubs
CurlCurl_3            3-D EM FEM, ~11 nnz/row                     7-pt 3-D grid
nd12k / nd24k         chained dense blocks                        block_dense
Si41Ge41H72           quantum chemistry                           27-pt 3-D grid
great-britain_osm     road network: huge diameter                 long skinny kNN strip
human_gene2           gene network: shallow + skewed              RMAT
Ga41As41H72           quantum chemistry                           27-pt 3-D grid
bundle_adj            arrowhead camera/point system               bundle_adjustment
coPapersDBLP          social/citation power law                   preferential attachment
Emilia_923            3-D geomechanical FEM                       27-pt 3-D grid
delaunay_n23          Delaunay mesh (exact structure)             Delaunay triangulation
hugebubbles-00020     2-D adaptive mesh, huge diameter            tall thin 2-D grid
audikw_1              3-D FEM, ~82 nnz/row                        27-pt 3-D grid
nlpkkt120..240        3-D PDE-constrained KKT (exact shape)       nlpkkt_like
mycielskian18         Mycielski graph (exact construction)        mycielskian(12)
====================  ==========================================  ===========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.matrices import generators as g
from repro.matrices.kkt import kkt_system, nlpkkt_like
from repro.matrices.mycielski import mycielskian

__all__ = ["SuiteEntry", "TESTSET", "get_matrix", "matrix_names", "PaperRow"]


@dataclass(frozen=True)
class PaperRow:
    """Reference numbers from the paper's Table I (timings in ms).

    ``None`` marks entries the paper leaves blank (Reorderlib failures).
    Some Table I cells are ambiguous in the extracted text; values here are
    best-effort and used only for qualitative shape comparison.
    """

    n: float
    nnz: float
    init_bw: float
    reord_bw: float
    hsl: Optional[float]
    reorderlib: Optional[float]
    cpu_rcm: float
    cpu_batch_basic: float
    cpu_batch: float
    gpu_rcm: float
    gpu_batch: float


@dataclass(frozen=True)
class SuiteEntry:
    """One test-set row: a named generator plus the paper's reference row."""

    name: str
    make: Callable[[], CSRMatrix]
    regime: str
    paper: PaperRow
    size_class: str  # "small" | "medium" | "large" per the paper's NNZ bands

    def build(self) -> CSRMatrix:
        """Generate the analogue matrix (uncached)."""
        return self.make()


def _chemistry(m: int, hubs: int, seed: int) -> CSRMatrix:
    """27-point 3-D grid with a few hub rows — chemistry-matrix analogue."""
    base = g.grid3d(m, m, m, stencil=27)
    if hubs == 0:
        return base
    n = base.n
    rng = np.random.default_rng(seed)
    rows = [np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))]
    cols = [base.indices]
    hub_ids = rng.choice(n, size=hubs, replace=False)
    deg = n // 3
    for h in hub_ids:
        nb = rng.choice(n, size=deg, replace=False).astype(np.int64)
        rows.append(np.full(deg, h, dtype=np.int64))
        cols.append(nb)
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    keep = r != c
    rr = np.concatenate([r[keep], c[keep]])
    cc = np.concatenate([c[keep], r[keep]])
    return coo_to_csr(n, rr, cc)


TESTSET: List[SuiteEntry] = [
    SuiteEntry(
        "bcspwr10",
        lambda: g.random_geometric(5300, k=3, aspect=3.0, seed=10),
        "narrow-front power grid",
        PaperRow(5.3e3, 22e3, 5189, 285, 1.28, 1.98, 0.26, 0.33, 0.33, 3.81, 1.09),
        "small",
    ),
    SuiteEntry(
        "bodyy4",
        lambda: g.delaunay_mesh(6000, seed=11),
        "2-D FEM mesh",
        PaperRow(17.5e3, 122e3, 16818, 248, 1.49, 2.24, 0.29, 0.78, 0.76, 10.74, 2.89),
        "small",
    ),
    SuiteEntry(
        "benzene",
        lambda: g.grid3d(14, 14, 14, stencil=27),
        "chemistry, wide front",
        PaperRow(8.2e3, 243e3, 2898, 1905, 2.11, 2.17, 0.30, 0.56, 0.64, 4.55, 0.43),
        "small",
    ),
    SuiteEntry(
        "ncvxqp3",
        lambda: kkt_system(g.grid2d(60, 60), 1600, seed=12),
        "QP KKT",
        PaperRow(75e3, 500e3, 69996, 14154, 11.34, 11.44, 2.38, 2.36, 2.33, 7.56, 0.91),
        "small",
    ),
    SuiteEntry(
        "ecology1",
        lambda: g.grid2d(110, 110),
        "5-pt 2-D grid",
        PaperRow(1.0e6, 5.0e6, 1000, 1000, 154.95, 190.84, 26.81, 31.13, 40.61, 541.21, 57.21),
        "small",
    ),
    SuiteEntry(
        "gupta3",
        lambda: g.hub_matrix(3000, n_hubs=6, hub_degree_frac=0.8, base_half_bandwidth=8, seed=13),
        "dense hub rows",
        PaperRow(16.8e3, 9.3e6, 16744, 15584, 59.00, 21.73, 5.64, 1.18, 1.67, 33.10, 1.16),
        "medium",
    ),
    SuiteEntry(
        "SiO2",
        lambda: _chemistry(13, hubs=3, seed=14),
        "chemistry + hubs",
        PaperRow(155.3e3, 11.3e6, 55068, 20209, 104.41, 75.64, 16.30, 12.09, 11.10, 22.99, 9.71),
        "medium",
    ),
    SuiteEntry(
        "CurlCurl_3",
        lambda: g.grid3d(22, 22, 22, stencil=7),
        "3-D EM FEM",
        PaperRow(1.2e6, 13.5e6, 26759, 20045, 179.05, 271.25, 44.74, 40.79, 31.41, 78.98, 17.94),
        "medium",
    ),
    SuiteEntry(
        "nd12k",
        lambda: g.block_dense(14, 56, coupling=2, seed=15),
        "chained dense blocks",
        PaperRow(36e3, 14.2e6, 34517, 6341, 100.52, 26.73, 12.47, 9.14, 8.18, 22.90, 15.49),
        "medium",
    ),
    SuiteEntry(
        "Si41Ge41H72",
        lambda: g.grid3d(13, 13, 13, stencil=27),
        "chemistry",
        PaperRow(185.6e3, 15.0e6, 31518, 26518, 144.77, 72.66, 22.82, 16.69, 15.30, 28.04, 16.92),
        "medium",
    ),
    SuiteEntry(
        "great-britain_osm",
        lambda: g.road_network(14000, seed=16),
        "road network, huge diameter",
        PaperRow(7.7e6, 16.3e6, 7693184, 4677, 1274.45, None, 291.08, 326.02, 270.17, 3875.03, 223.12),
        "medium",
    ),
    SuiteEntry(
        "human_gene2",
        lambda: g.rmat(12, edge_factor=24, seed=17),
        "gene network, skewed",
        PaperRow(14.3e3, 18.1e6, 14257, 12037, 150.54, 56.28, 11.65, 9.29, 8.69, 29.49, 20.63),
        "medium",
    ),
    SuiteEntry(
        "Ga41As41H72",
        lambda: g.grid3d(14, 14, 14, stencil=27),
        "chemistry",
        PaperRow(268.1e3, 18.5e6, 40195, 33379, 189.44, 97.18, 30.06, 21.93, 19.36, 34.00, 20.63),
        "medium",
    ),
    SuiteEntry(
        "bundle_adj",
        lambda: g.bundle_adjustment(500, 9000, seed=18),
        "arrowhead",
        PaperRow(513.4e3, 20.2e6, 510044, 20738, 87.54, 144.39, 29.76, 22.41, 27.17, 341.25, 16.49),
        "medium",
    ),
    SuiteEntry(
        "nd24k",
        lambda: g.block_dense(20, 64, coupling=2, seed=19),
        "chained dense blocks",
        PaperRow(72e3, 28.7e6, 68114, 11291, 200.89, 46.14, 23.77, 16.41, 15.59, 36.16, 31.24),
        "medium",
    ),
    SuiteEntry(
        "coPapersDBLP",
        lambda: g.powerlaw_cluster(9000, m=12, seed=20),
        "citation power law",
        PaperRow(540.5e3, 30.5e6, 539587, 254848, 392.93, None, 65.34, 27.32, 26.42, 47.15, 31.60),
        "large",
    ),
    SuiteEntry(
        "Emilia_923",
        lambda: g.grid3d(17, 17, 17, stencil=27),
        "3-D geomechanical FEM",
        PaperRow(923.1e3, 41.0e6, 17279, 16883, 194.62, 213.01, 47.06, 45.44, 30.71, 89.60, 49.25),
        "large",
    ),
    SuiteEntry(
        "delaunay_n23",
        lambda: g.delaunay_mesh(16000, seed=21),
        "Delaunay mesh",
        PaperRow(8.4e6, 50.3e6, 8382693, 16777, 1557.97, None, 271.13, 153.71, 132.41, 828.79, 79.03),
        "large",
    ),
    SuiteEntry(
        "hugebubbles-00020",
        lambda: g.grid2d(650, 26),
        "2-D mesh, huge diameter",
        PaperRow(21.2e6, 63.6e6, 21188550, 4575, 9377.19, None, 1598.78, 1241.05, 905.41, 8490.28, 248.43),
        "large",
    ),
    SuiteEntry(
        "audikw_1",
        lambda: g.grid3d(16, 16, 16, stencil=27),
        "3-D FEM, dense rows",
        PaperRow(943.7e3, 77.7e6, 925946, 34400, 377.90, 244.46, 118.25, 58.99, 49.58, 139.62, 85.55),
        "large",
    ),
    SuiteEntry(
        "nlpkkt120",
        lambda: nlpkkt_like(12, seed=22),
        "3-D KKT",
        PaperRow(3.5e6, 96.8e6, 1814521, 86876, 1411.13, 837.78, 383.20, 203.19, 132.63, 200.00, 114.05),
        "large",
    ),
    SuiteEntry(
        "Flan_1565",
        lambda: g.grid3d(18, 18, 18, stencil=27),
        "3-D FEM shell",
        PaperRow(1.6e6, 117.4e6, 20702, 20849, 510.34, 339.62, 168.81, 89.83, 68.62, 223.86, 134.16),
        "large",
    ),
    SuiteEntry(
        "nlpkkt160",
        lambda: nlpkkt_like(15, seed=23),
        "3-D KKT",
        PaperRow(8.3e6, 229.5e6, 4249761, 154236, 3675.97, 1912.27, 1166.98, 436.58, 286.23, 442.00, 268.57),
        "large",
    ),
    SuiteEntry(
        "mycielskian18",
        lambda: mycielskian(12),
        "Mycielski (early-termination outlier)",
        PaperRow(196.6e3, 300.9e6, 196590, 196589, 2770.78, None, 213.77, 8.73, 8.58, 468.59, 14.02),
        "large",
    ),
    SuiteEntry(
        "nlpkkt200",
        lambda: nlpkkt_like(18, seed=24),
        "3-D KKT",
        PaperRow(16.2e6, 448.2e6, 8240201, 240796, 7335.28, 3402.59, 2547.49, 784.54, 540.97, 814.90, 520.01),
        "large",
    ),
    SuiteEntry(
        "nlpkkt240",
        lambda: nlpkkt_like(21, seed=25),
        "3-D KKT",
        PaperRow(28.0e6, 774.5e6, 14169841, 346556, 13218.79, 5644.68, 4574.78, 1283.31, 938.80, 1534.99, 900.77),
        "large",
    ),
]

_BY_NAME: Dict[str, SuiteEntry] = {e.name: e for e in TESTSET}
_CACHE: Dict[str, CSRMatrix] = {}


def matrix_names() -> List[str]:
    """Names of all test-set matrices in Table I (NNZ-ascending) order."""
    return [e.name for e in TESTSET]


def get_matrix(name: str, *, cache: bool = True) -> CSRMatrix:
    """Build (and memoize) the analogue matrix for a Table I row."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown test-set matrix {name!r}; see matrix_names()")
    if cache and name in _CACHE:
        return _CACHE[name]
    mat = _BY_NAME[name].build()
    if cache:
        _CACHE[name] = mat
    return mat
