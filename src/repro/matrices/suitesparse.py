"""Running on the real SuiteSparse matrices (when you have network access).

The benchmarks in this repository run on synthetic analogues so everything
works offline; this module is the bridge to the genuine article.  It knows
each Table I matrix's SuiteSparse group, builds download URLs, and loads a
downloaded file through the right reader — so

::

    url = suitesparse_url("gupta3")           # fetch this yourself
    mat = load_suitesparse("~/Downloads/gupta3.mtx.gz")
    repro.reorder(mat, method="batch-cpu", n_workers=12)

reproduces the paper's experiments on its actual inputs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.sparse.csr import CSRMatrix

__all__ = ["SUITESPARSE_GROUPS", "suitesparse_url", "load_suitesparse"]

#: SuiteSparse collection group of every Table I matrix
SUITESPARSE_GROUPS: Dict[str, str] = {
    "bcspwr10": "HB",
    "bodyy4": "Pothen",
    "benzene": "PARSEC",
    "ncvxqp3": "GHS_indef",
    "ecology1": "McRae",
    "gupta3": "Gupta",
    "SiO2": "PARSEC",
    "CurlCurl_3": "Bodendiek",
    "nd12k": "ND",
    "Si41Ge41H72": "PARSEC",
    "great-britain_osm": "DIMACS10",
    "human_gene2": "Belcastro",
    "Ga41As41H72": "PARSEC",
    "bundle_adj": "Mazaheri",
    "nd24k": "ND",
    "coPapersDBLP": "DIMACS10",
    "Emilia_923": "Janna",
    "delaunay_n23": "DIMACS10",
    "hugebubbles-00020": "DIMACS10",
    "audikw_1": "GHS_psdef",
    "nlpkkt120": "Schenk",
    "Flan_1565": "Janna",
    "nlpkkt160": "Schenk",
    "mycielskian18": "Mycielski",
    "nlpkkt200": "Schenk",
    "nlpkkt240": "Schenk",
}

_BASE = "https://suitesparse-collection-website.herokuapp.com/MM"


def suitesparse_url(name: str) -> str:
    """Download URL of the MatrixMarket archive for a Table I matrix."""
    if name not in SUITESPARSE_GROUPS:
        raise KeyError(
            f"{name!r} is not a Table I matrix; known: "
            f"{sorted(SUITESPARSE_GROUPS)}"
        )
    group = SUITESPARSE_GROUPS[name]
    return f"{_BASE}/{group}/{name}.tar.gz"


def load_suitesparse(path: Union[str, Path]) -> CSRMatrix:
    """Load a downloaded SuiteSparse matrix (``.mtx``, ``.mtx.gz``, ``.rb``)
    and prepare it for RCM: pattern symmetrized, rows sorted."""
    path = Path(path)
    if path.suffix in (".rb", ".rua", ".rsa", ".psa", ".pua", ".hb"):
        from repro.sparse.hb import read_harwell_boeing

        mat = read_harwell_boeing(path)
    else:
        from repro.sparse.io import read_matrix_market

        mat = read_matrix_market(path)
    from repro.sparse.validate import is_structurally_symmetric

    if not is_structurally_symmetric(mat):
        mat = mat.symmetrize()
    return mat
