"""Synthetic matrix generators mirroring the paper's SuiteSparse test set.

The paper evaluates on 26 symmetric SuiteSparse matrices spanning structural
regimes: regular grids (narrow-to-medium fronts), 3-D FEM meshes (wide
fronts), power-law/social graphs (skewed valences), road networks (huge
diameter, narrow front), dense-hub matrices (gupta3), and the Mycielskian
graphs whose structure triggers the paper's early-termination outlier.

Each generator produces a structurally symmetric :class:`~repro.sparse.CSRMatrix`
at laptop scale while landing in the same regime; :mod:`repro.matrices.suite`
maps every Table I row to its analogue.
"""

from repro.matrices.generators import (
    grid2d,
    grid3d,
    banded,
    random_geometric,
    delaunay_mesh,
    rmat,
    kronecker,
    powerlaw_cluster,
    watts_strogatz,
    hub_matrix,
    block_dense,
    road_network,
    bundle_adjustment,
    caterpillar,
)
from repro.matrices.mycielski import mycielskian
from repro.matrices.kkt import kkt_system, nlpkkt_like
from repro.matrices.suite import TESTSET, SuiteEntry, get_matrix, matrix_names
from repro.matrices.scenarios import (
    FAMILIES,
    FAMILY_FLOORS,
    SCENARIOS,
    ScenarioSpec,
    classify,
    scenario_names,
    scenario_suite,
    shuffled,
)

__all__ = [
    "grid2d",
    "grid3d",
    "banded",
    "random_geometric",
    "delaunay_mesh",
    "rmat",
    "kronecker",
    "powerlaw_cluster",
    "watts_strogatz",
    "hub_matrix",
    "block_dense",
    "road_network",
    "bundle_adjustment",
    "caterpillar",
    "mycielskian",
    "kkt_system",
    "nlpkkt_like",
    "TESTSET",
    "SuiteEntry",
    "get_matrix",
    "matrix_names",
    "FAMILIES",
    "FAMILY_FLOORS",
    "SCENARIOS",
    "ScenarioSpec",
    "classify",
    "scenario_names",
    "scenario_suite",
    "shuffled",
]
