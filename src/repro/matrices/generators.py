"""Structural matrix generators.

All generators return pattern-only, structurally symmetric
:class:`~repro.sparse.CSRMatrix` objects with sorted row indices and no
duplicate entries.  Randomized generators take an explicit ``seed`` and are
fully deterministic for a given seed (NumPy ``default_rng``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix, coo_to_csr

__all__ = [
    "grid2d",
    "grid3d",
    "banded",
    "random_geometric",
    "delaunay_mesh",
    "rmat",
    "kronecker",
    "powerlaw_cluster",
    "watts_strogatz",
    "hub_matrix",
    "block_dense",
    "road_network",
    "bundle_adjustment",
    "caterpillar",
]


def _from_edges(n: int, rows: np.ndarray, cols: np.ndarray) -> CSRMatrix:
    """Symmetrize an edge list (drop self loops, both directions, dedupe)."""
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    r = np.concatenate([rows, cols])
    c = np.concatenate([cols, rows])
    return coo_to_csr(n, r, c)


# ----------------------------------------------------------------------
# regular structures
# ----------------------------------------------------------------------
def grid2d(nx: int, ny: int, *, stencil: int = 5) -> CSRMatrix:
    """2-D grid graph (5- or 9-point stencil, off-diagonal pattern only).

    Analogue of *ecology1* (5-point) and moderately banded FEM problems.
    The BFS front from a corner is an anti-diagonal of width ``O(min(nx,ny))``.
    """
    if stencil not in (5, 9):
        raise ValueError("stencil must be 5 or 9")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(ny, nx)
    pairs = [
        (idx[:, :-1], idx[:, 1:]),  # horizontal
        (idx[:-1, :], idx[1:, :]),  # vertical
    ]
    if stencil == 9:
        pairs.append((idx[:-1, :-1], idx[1:, 1:]))  # diag \
        pairs.append((idx[:-1, 1:], idx[1:, :-1]))  # diag /
    rows = np.concatenate([a.ravel() for a, _ in pairs])
    cols = np.concatenate([b.ravel() for _, b in pairs])
    return _from_edges(nx * ny, rows, cols)


def grid3d(nx: int, ny: int, nz: int, *, stencil: int = 7) -> CSRMatrix:
    """3-D grid graph (7- or 27-point stencil).

    Analogue of the FEM matrices (*Emilia_923*, *audikw_1*, *Flan_1565*):
    wide BFS fronts ``O(n^{2/3})`` that favour the parallel versions.
    """
    if stencil not in (7, 27):
        raise ValueError("stencil must be 7 or 27")
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    rows_list = []
    cols_list = []

    def add(a: np.ndarray, b: np.ndarray) -> None:
        rows_list.append(a.ravel())
        cols_list.append(b.ravel())

    add(idx[:, :, :-1], idx[:, :, 1:])
    add(idx[:, :-1, :], idx[:, 1:, :])
    add(idx[:-1, :, :], idx[1:, :, :])
    if stencil == 27:
        for dz in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if (dz, dy, dx) <= (0, 0, 0):
                        continue
                    if abs(dz) + abs(dy) + abs(dx) <= 1:
                        continue  # already added axis neighbours
                    src = idx[
                        max(0, -dz) : nz - max(0, dz),
                        max(0, -dy) : ny - max(0, dy),
                        max(0, -dx) : nx - max(0, dx),
                    ]
                    dst = idx[
                        max(0, dz) : nz + min(0, dz),
                        max(0, dy) : ny + min(0, dy),
                        max(0, dx) : nx + min(0, dx),
                    ]
                    add(src, dst)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _from_edges(nx * ny * nz, rows, cols)


def banded(n: int, half_bandwidth: int, *, density: float = 1.0, seed: int = 0) -> CSRMatrix:
    """Symmetric banded pattern with optional random thinning.

    With ``density == 1`` every entry within the band is present.  A banded
    matrix is RCM's best case: the natural order is already near optimal.
    """
    if half_bandwidth < 1:
        raise ValueError("half_bandwidth must be >= 1")
    rng = np.random.default_rng(seed)
    rows_list = []
    cols_list = []
    for off in range(1, half_bandwidth + 1):
        r = np.arange(n - off, dtype=np.int64)
        c = r + off
        if density < 1.0:
            keep = rng.random(r.size) < density
            r, c = r[keep], c[keep]
        rows_list.append(r)
        cols_list.append(c)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _from_edges(n, rows, cols)


# ----------------------------------------------------------------------
# geometric / mesh structures
# ----------------------------------------------------------------------
def random_geometric(
    n: int,
    *,
    k: int = 6,
    aspect: float = 1.0,
    seed: int = 0,
) -> CSRMatrix:
    """k-nearest-neighbour graph on uniform points in an ``aspect × 1`` box.

    ``aspect >> 1`` produces long skinny domains with a narrow BFS front
    (road-network-like); ``aspect == 1`` mesh-like graphs.
    """
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    pts[:, 0] *= aspect
    from scipy.spatial import cKDTree

    tree = cKDTree(pts)
    _, nbrs = tree.query(pts, k=k + 1)
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    cols = nbrs[:, 1:].astype(np.int64).ravel()
    return _from_edges(n, rows, cols)


def delaunay_mesh(n: int, *, seed: int = 0) -> CSRMatrix:
    """Delaunay triangulation of random points — analogue of *delaunay_n23*
    and 2-D FEM meshes (*bodyy4*)."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    from scipy.spatial import Delaunay

    tri = Delaunay(pts)
    simplices = tri.simplices.astype(np.int64)
    rows = np.concatenate([simplices[:, 0], simplices[:, 1], simplices[:, 2]])
    cols = np.concatenate([simplices[:, 1], simplices[:, 2], simplices[:, 0]])
    return _from_edges(n, rows, cols)


# ----------------------------------------------------------------------
# power-law / social structures
# ----------------------------------------------------------------------
def rmat(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRMatrix:
    """Recursive-MATrix (Graph500-style) power-law graph on ``2**scale``
    nodes — analogue of *coPapersDBLP* / *human_gene2*: highly skewed
    valences and a shallow, very wide BFS."""
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # quadrant probabilities: a | b / c | d
        south = r >= a + b  # row bit set
        east = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        rows |= south.astype(np.int64) << bit
        cols |= east.astype(np.int64) << bit
    return _from_edges(n, rows, cols)


def kronecker(
    power: int,
    *,
    initiator: Tuple[Tuple[float, float], Tuple[float, float]] = (
        (0.9, 0.5),
        (0.5, 0.1),
    ),
    edge_factor: int = 8,
    seed: int = 0,
) -> CSRMatrix:
    """Stochastic Kronecker graph on ``2**power`` nodes (Graph500 kernel).

    Edges are sampled by descending the ``2 x 2`` ``initiator`` probability
    matrix ``power`` times, one quadrant choice per bit — the recursive
    construction behind the Graph500 generator.  The default initiator is
    the classic Leskovec core-periphery seed: strongly skewed valences with
    a dense core, the hostile regime where RCM's level sets collapse.
    Unlike :func:`rmat` (which draws quadrants from one flat categorical),
    the bit choices here are sampled independently per dimension, giving
    the characteristic Kronecker self-similarity.
    """
    (a, b), (c, d) = initiator
    total = a + b + c + d
    if total <= 0:
        raise ValueError("initiator probabilities must sum to > 0")
    n = 1 << power
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    # per-bit conditional probabilities of the 2 x 2 initiator
    p_row = (c + d) / total          # P(row bit = 1)
    p_col_row0 = b / max(a + b, 1e-300)  # P(col bit = 1 | row bit = 0)
    p_col_row1 = d / max(c + d, 1e-300)  # P(col bit = 1 | row bit = 1)
    for bit in range(power):
        south = rng.random(m) < p_row
        p_east = np.where(south, p_col_row1, p_col_row0)
        east = rng.random(m) < p_east
        rows |= south.astype(np.int64) << bit
        cols |= east.astype(np.int64) << bit
    return _from_edges(n, rows, cols)


def powerlaw_cluster(n: int, m: int = 4, *, seed: int = 0) -> CSRMatrix:
    """Barabási–Albert-style preferential attachment (vectorized enough for
    laptop sizes) — an alternative skewed-valence generator."""
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = np.random.default_rng(seed)
    # repeated-node list trick: attach new node to m sampled endpoints
    targets = list(range(m))
    repeated: list = []
    rows_list = []
    cols_list = []
    for v in range(m, n):
        rows_list.extend([v] * m)
        cols_list.extend(targets)
        repeated.extend(targets)
        repeated.extend([v] * m)
        idx = rng.integers(0, len(repeated), size=m)
        targets = [repeated[i] for i in idx]
    rows = np.asarray(rows_list, dtype=np.int64)
    cols = np.asarray(cols_list, dtype=np.int64)
    return _from_edges(n, rows, cols)


def watts_strogatz(
    n: int,
    k: int = 6,
    p: float = 0.1,
    *,
    seed: int = 0,
) -> CSRMatrix:
    """Watts–Strogatz small-world graph: ``k``-ring plus random rewiring.

    Every node starts connected to its ``k`` nearest ring neighbours
    (``k`` rounded down to even), then each ring edge is rewired to a
    uniformly random endpoint with probability ``p``.  For small ``p`` the
    result keeps the ring's high clustering but gains ``O(log n)``
    diameter — near-uniform valences with a BFS depth far below any
    mesh of the same size, the regime where level-set schedules have
    plenty of width but almost no depth to pipeline.

    The ring backbone is never disconnected (rewiring replaces only the
    far endpoint), so the graph stays connected for ``k >= 2``.
    """
    if k < 2 or k >= n:
        raise ValueError("need 2 <= k < n")
    if not 0.0 <= p <= 1.0:
        raise ValueError("rewiring probability p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    half = max(k // 2, 1)
    rows_list = []
    cols_list = []
    for off in range(1, half + 1):
        src = np.arange(n, dtype=np.int64)
        dst = (src + off) % n
        rewire = rng.random(n) < p
        random_dst = rng.integers(0, n, size=n, dtype=np.int64)
        # keep off == 1 ring edges intact so the backbone stays connected
        if off == 1:
            rewire &= False
        dst = np.where(rewire, random_dst, dst)
        rows_list.append(src)
        cols_list.append(dst)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _from_edges(n, rows, cols)


def hub_matrix(
    n: int,
    *,
    n_hubs: int = 4,
    hub_degree_frac: float = 0.8,
    base_half_bandwidth: int = 8,
    seed: int = 0,
) -> CSRMatrix:
    """Banded matrix plus a few near-dense hub rows.

    Analogue of *gupta3*: tiny dimension but enormous maximum valence
    (hub rows touching most of the matrix), which stresses single-node
    batches and (on the GPU) scratchpad-overflow chunking.
    """
    rng = np.random.default_rng(seed)
    base = banded(n, base_half_bandwidth, seed=seed)
    rows_list = [np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))]
    cols_list = [base.indices]
    hubs = rng.choice(n, size=n_hubs, replace=False).astype(np.int64)
    deg = int(hub_degree_frac * n)
    for h in hubs:
        nb = rng.choice(n, size=deg, replace=False).astype(np.int64)
        rows_list.append(np.full(deg, h, dtype=np.int64))
        cols_list.append(nb)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _from_edges(n, rows, cols)


def block_dense(
    n_blocks: int,
    block_size: int,
    *,
    coupling: int = 2,
    seed: int = 0,
) -> CSRMatrix:
    """Chain of dense diagonal blocks with sparse coupling between
    neighbouring blocks — analogue of *nd12k*/*nd24k* (small dimension, very
    high density, wide local fronts)."""
    n = n_blocks * block_size
    rng = np.random.default_rng(seed)
    rows_list = []
    cols_list = []
    for b in range(n_blocks):
        base = b * block_size
        tri_r, tri_c = np.triu_indices(block_size, k=1)
        rows_list.append(tri_r.astype(np.int64) + base)
        cols_list.append(tri_c.astype(np.int64) + base)
        if b + 1 < n_blocks:
            nxt = base + block_size
            for _ in range(coupling * block_size):
                rows_list.append(
                    np.array([base + rng.integers(block_size)], dtype=np.int64)
                )
                cols_list.append(
                    np.array([nxt + rng.integers(block_size)], dtype=np.int64)
                )
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _from_edges(n, rows, cols)


def road_network(
    n: int, *, aspect: Optional[float] = None, seed: int = 0
) -> CSRMatrix:
    """Long, narrow, low-degree near-planar graph.

    Analogue of *great-britain_osm* / *hugebubbles*: tiny average valence and
    a huge BFS depth, i.e. almost no parallelism for RCM — the regime where
    the paper's approach stops scaling.  ``aspect`` overrides the default
    domain elongation (``max(4, n / 400)``); large values give extremely
    skinny strips that may fragment into several components, exactly like
    real road sub-networks.
    """
    # a skinny kNN strip with k=3 gives degree ~3-6 and diameter O(n / width)
    if aspect is None:
        aspect = max(4.0, n / 400.0)
    return random_geometric(n, k=3, aspect=aspect, seed=seed)


def bundle_adjustment(
    n_cameras: int,
    n_points: int,
    *,
    observations_per_point: int = 4,
    seed: int = 0,
) -> CSRMatrix:
    """Camera/point bipartite coupling plus dense camera-camera block —
    analogue of *bundle_adj* (an arrowhead-like pattern with a huge initial
    bandwidth that RCM cannot fully flatten)."""
    rng = np.random.default_rng(seed)
    n = n_cameras + n_points
    # each point observed by a few "nearby" cameras
    cam_centers = np.sort(rng.integers(0, n_cameras, size=n_points))
    rows_list = []
    cols_list = []
    for k in range(observations_per_point):
        cams = (cam_centers + rng.integers(-2, 3, size=n_points)) % n_cameras
        rows_list.append(np.arange(n_points, dtype=np.int64) + n_cameras)
        cols_list.append(cams.astype(np.int64))
    # camera-camera connectivity (sliding window)
    w = 6
    for off in range(1, w + 1):
        r = np.arange(n_cameras - off, dtype=np.int64)
        rows_list.append(r)
        cols_list.append(r + off)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _from_edges(n, rows, cols)


def caterpillar(spine: int, legs: int) -> CSRMatrix:
    """Spine path with ``legs`` pendant nodes per spine node.

    A pathological narrow-front graph used in unit tests: the BFS front is
    tiny, so batch RCM degenerates to near-serial execution and stalls
    dominate — a deterministic fixture for stall accounting.
    """
    n = spine * (1 + legs)
    rows_list = [np.arange(spine - 1, dtype=np.int64)]
    cols_list = [np.arange(1, spine, dtype=np.int64)]
    leg_ids = np.arange(spine * legs, dtype=np.int64) + spine
    spine_of_leg = np.repeat(np.arange(spine, dtype=np.int64), legs)
    rows_list.append(spine_of_leg)
    cols_list.append(leg_ids)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return _from_edges(n, rows, cols)
