"""Mycielski graph construction.

*mycielskian18* is the paper's most striking outlier: early termination lets
batch RCM skip >99% of generated batches, yielding a superlinear speedup
(Table I: 213.77 ms serial vs 8.73 ms CPU-BATCH).  The effect is structural —
Mycielskians are dense, small-diameter graphs where almost every node is
discovered within the first couple of batches, so the queue fills with
batches that will never own a child.  Reproducing that effect requires the
*exact* construction, not an analogue, so this module implements it.

``M_2`` is a single edge (K2); ``M_{k+1}`` is the Mycielskian of ``M_k``:
given G with nodes ``v_1..v_n``, add shadow nodes ``u_1..u_n`` and a hub
``w``; connect ``u_i`` to all neighbours of ``v_i`` and to ``w``.
The Mycielskian of a graph with n nodes and m edges has ``2n + 1`` nodes and
``3m + n`` edges; mycielskian-k has chromatic number k with no triangle
growth beyond the base.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix, coo_to_csr

__all__ = ["mycielskian", "mycielski_step"]


def mycielski_step(edges: np.ndarray, n: int) -> tuple:
    """One Mycielski step on an undirected edge list (each edge once)."""
    u_off = n
    w = 2 * n
    # original edges, shadow edges (u_i, neighbour of v_i) both directions
    shadow_a = np.stack([edges[:, 0] + u_off, edges[:, 1]], axis=1)
    shadow_b = np.stack([edges[:, 1] + u_off, edges[:, 0]], axis=1)
    hub = np.stack(
        [np.arange(n, dtype=np.int64) + u_off, np.full(n, w, dtype=np.int64)], axis=1
    )
    new_edges = np.concatenate([edges, shadow_a, shadow_b, hub], axis=0)
    return new_edges, 2 * n + 1


def mycielskian(k: int) -> CSRMatrix:
    """The Mycielski graph ``M_k`` as a symmetric pattern matrix.

    ``k == 2`` is a single edge; ``k == 3`` the 5-cycle (Grötzsch ladder
    base); the paper uses ``k == 18`` (196,608 nodes).  ``k`` up to ~15 is
    practical in RAM at laptop scale (``M_k`` has ``3 * 2^{k-2} - 1`` nodes:
    M15 ≈ 24k nodes, ~10M edges).
    """
    if k < 2:
        raise ValueError("mycielskian is defined for k >= 2")
    edges = np.array([[0, 1]], dtype=np.int64)
    n = 2
    for _ in range(k - 2):
        edges, n = mycielski_step(edges, n)
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    return coo_to_csr(n, rows, cols)
