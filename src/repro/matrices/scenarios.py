"""Named scenario families and the degree-distribution classifier.

The paper's speculative RCM was tuned on friendly mesh-like SuiteSparse
patterns.  This module names the *hostile* regimes too, so every backend can
be validated off the meshes it was tuned on:

* ``mesh`` — 2-D/3-D FEM-like patterns: near-uniform valences, BFS depth
  ``O(sqrt(n))``, wide fronts.  RCM's home turf.
* ``banded`` — the natural order is already near-optimal; RCM must not make
  it worse.
* ``road-like`` — tiny uniform valences, huge diameter: almost no level
  parallelism, the regime where the paper's approach stops scaling.
* ``power-law`` — heavy-tailed valences (RMAT / Kronecker / preferential
  attachment): level sets collapse into two or three enormous fronts and
  every mesh-calibrated cost model misprices the pattern.
* ``small-world`` — near-uniform valences but ``O(log n)`` diameter
  (Watts–Strogatz): plenty of front width, almost no depth.
* ``hub-dominated`` — a banded base plus a few near-dense hub rows
  (*gupta3*-like): a handful of valence outliers distort start selection
  and single-node batch scheduling.

:func:`classify` places an arbitrary pattern into one of these families
from its degree distribution (plus the pattern bandwidth and, for the
uniform-valence regimes, one BFS depth probe).  :data:`SCENARIOS` registers
deterministic generator-backed instances of every family at two size
tiers, and :data:`FAMILY_FLOORS` states the bandwidth-reduction floor each
family must clear — the structural expectations
``tests/test_scenarios.py`` and ``benchmarks/bench_scenarios.py`` enforce
per backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.bandwidth import bandwidth
from repro.matrices import generators as g

__all__ = [
    "FAMILIES",
    "FAMILY_FLOORS",
    "SCENARIOS",
    "SIZES",
    "ScenarioSpec",
    "classify",
    "classify_stats",
    "heavy_tailed",
    "scenario_names",
    "scenario_suite",
    "shuffled",
]

#: every named scenario family, presentation order
FAMILIES = (
    "mesh",
    "banded",
    "road-like",
    "power-law",
    "small-world",
    "hub-dominated",
)

#: size tiers a scenario instance can be built at: ``small`` for the
#: per-push validation matrix, ``large`` for the nightly sweep / benchmarks
SIZES = ("small", "large")

#: minimum relative bandwidth reduction ``1 - bw_rcm / bw_shuffled`` each
#: family must clear under RCM, measured from a seeded random relabeling
#: of the pattern (:func:`shuffled`).  Several families ship in an
#: already-near-optimal natural order (a band, a grid), where RCM can at
#: best break even — so the floor is a *recovery* floor: scramble the
#: labels, then demand RCM win most of the inflation back.  These are
#: structural numbers (no wall clock involved): meshes, bands, and road
#: strips recover almost everything; power-law patterns recover ~30-40%
#: and hub rows pin the bandwidth near the hub span — which is exactly
#: why those small floors must be pinned, so a silently broken kernel
#: cannot hide behind "power-law graphs don't compress anyway".
FAMILY_FLOORS: Dict[str, float] = {
    "mesh": 0.70,
    "banded": 0.90,
    "road-like": 0.90,
    "power-law": 0.15,
    "small-world": 0.50,
    "hub-dominated": 0.02,
}


def shuffled(mat: CSRMatrix, *, seed: int = 0) -> CSRMatrix:
    """The pattern under a seeded random symmetric relabeling.

    The floor baseline: families like ``banded`` and ``mesh-grid`` arrive
    in a near-optimal natural order where "reduce the bandwidth" is
    meaningless, so floors are measured as recovery from this scramble.
    """
    rng = np.random.default_rng(seed)
    perm = np.asarray(rng.permutation(mat.n), dtype=np.int64)
    return mat.permute_symmetric(perm)


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario instance: a named, deterministic pattern.

    ``build(size)`` constructs the matrix at a size tier; instances are
    deterministic (fixed seeds) so goldens and floors are stable.
    """

    name: str
    family: str
    summary: str
    _builders: Dict[str, Callable[[], CSRMatrix]]

    def build(self, size: str = "small") -> CSRMatrix:
        """Construct this scenario's matrix at a size tier (see SIZES)."""
        if size not in self._builders:
            raise ValueError(
                f"size must be one of {', '.join(repr(s) for s in SIZES)}; "
                f"got {size!r}"
            )
        return self._builders[size]()


#: the scenario registry: at least one deterministic instance per family
SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="mesh-delaunay",
        family="mesh",
        summary="random Delaunay triangulation (2-D FEM analogue)",
        _builders={
            "small": lambda: g.delaunay_mesh(500, seed=101),
            "large": lambda: g.delaunay_mesh(4000, seed=101),
        },
    ),
    ScenarioSpec(
        name="mesh-grid",
        family="mesh",
        summary="regular 5-point 2-D grid",
        _builders={
            "small": lambda: g.grid2d(18, 18),
            "large": lambda: g.grid2d(64, 64),
        },
    ),
    ScenarioSpec(
        name="banded-thin",
        family="banded",
        summary="thinned symmetric band (RCM's best case)",
        _builders={
            "small": lambda: g.banded(280, 6, density=0.9, seed=102),
            "large": lambda: g.banded(4000, 12, density=0.9, seed=102),
        },
    ),
    ScenarioSpec(
        name="road-strip",
        family="road-like",
        summary="long skinny kNN strip (huge diameter, no parallelism)",
        _builders={
            "small": lambda: g.road_network(480, aspect=60.0, seed=103),
            "large": lambda: g.road_network(4000, seed=103),
        },
    ),
    ScenarioSpec(
        name="powerlaw-rmat",
        family="power-law",
        summary="Graph500-style RMAT (heavy-tailed valences)",
        _builders={
            "small": lambda: g.rmat(8, edge_factor=6, seed=104),
            "large": lambda: g.rmat(12, edge_factor=8, seed=104),
        },
    ),
    ScenarioSpec(
        name="powerlaw-kron",
        family="power-law",
        summary="stochastic Kronecker graph (core-periphery skew)",
        _builders={
            "small": lambda: g.kronecker(8, edge_factor=6, seed=105),
            "large": lambda: g.kronecker(12, edge_factor=8, seed=105),
        },
    ),
    ScenarioSpec(
        name="smallworld-ws",
        family="small-world",
        summary="Watts–Strogatz ring with rewired shortcuts",
        _builders={
            "small": lambda: g.watts_strogatz(320, 6, 0.15, seed=106),
            "large": lambda: g.watts_strogatz(4096, 8, 0.08, seed=106),
        },
    ),
    ScenarioSpec(
        name="hub-banded",
        family="hub-dominated",
        summary="banded base plus near-dense hub rows (gupta3-like)",
        _builders={
            "small": lambda: g.hub_matrix(
                360, n_hubs=3, hub_degree_frac=0.6, seed=107
            ),
            "large": lambda: g.hub_matrix(
                4000, n_hubs=4, hub_degree_frac=0.5, seed=107
            ),
        },
    ),
)


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, registration order."""
    return tuple(s.name for s in SCENARIOS)


def scenario_suite(size: str = "small") -> Dict[str, CSRMatrix]:
    """``{scenario name: matrix}`` for every registered scenario."""
    return {s.name: s.build(size) for s in SCENARIOS}


# ----------------------------------------------------------------------
# classifier
# ----------------------------------------------------------------------

#: a single hub is "dominant" when it touches at least this fraction of
#: the pattern …
HUB_NODE_FRAC = 0.15
#: … while valence outliers stay *rare* (otherwise the tail is power-law)
HUB_TAIL_FRAC = 0.02
#: heavy-tail cut: fraction of nodes whose valence exceeds 4x the median
POWERLAW_TAIL_FRAC = 0.02
#: alternative heavy-tail cut: coefficient of valence variation
POWERLAW_CV = 1.0
#: banded cut: pattern bandwidth no larger than this multiple of the mean
#: valence (a half-bandwidth-``b`` band has valence ``2b``)
BANDED_BW_RATIO = 1.5
#: small-world cut: probe depth at most this multiple of ``log2(reached)``
SMALLWORLD_DEPTH_LOG = 1.2
#: road-like cut: probe depth at least this multiple of ``sqrt(reached)``
ROAD_DEPTH_SQRT = 2.5


def _largest_component_probe(
    mat: CSRMatrix, degrees: np.ndarray
) -> Tuple[int, int]:
    """``(depth, reached)`` of a BFS from a min-valence node of the
    largest connected component.

    Skinny patterns fragment (a kNN strip routinely splits into pieces),
    and a probe trapped in a small fragment reports a meaningless depth —
    so probe components from min-valence seeds until the unreached
    remainder is smaller than the best probe so far, and keep the
    biggest.  Each probe is one vectorized BFS; real patterns need one or
    two.
    """
    from repro.sparse.graph import bfs_levels

    remaining = degrees > 0
    best_depth, best_reached = 0, 0
    while int(remaining.sum()) > best_reached:
        pool = np.flatnonzero(remaining)
        start = int(pool[np.argmin(degrees[pool])])
        levels = bfs_levels(mat, start)
        reached_mask = levels >= 0
        reached = int(reached_mask.sum())
        if reached > best_reached:
            best_reached = reached
            best_depth = int(levels.max())
        remaining &= ~reached_mask
    return best_depth, max(best_reached, 1)


def _degree_stats(mat: CSRMatrix) -> dict:
    """Degree-distribution features over non-isolated nodes (no BFS)."""
    degrees = mat.degrees()
    active = degrees[degrees > 0]
    n_active = int(active.size)
    if n_active == 0:
        return {
            "n": mat.n, "n_active": 0, "mean": 0.0, "median": 0.0,
            "max": 0, "cv": 0.0, "tail_frac": 0.0, "bandwidth": 0,
            "depth": 0, "reached": 0,
        }
    mean = float(active.mean())
    return {
        "n": mat.n,
        "n_active": n_active,
        "mean": mean,
        "median": float(np.median(active)),
        "max": int(active.max()),
        "cv": float(active.std() / mean) if mean > 0 else 0.0,
        "tail_frac": float(
            (active > 4.0 * np.median(active)).sum() / n_active
        ),
        "bandwidth": bandwidth(mat),
        "depth": None,
        "reached": None,
    }


def _skewed_family(stats: dict) -> "str | None":
    """``"hub-dominated"`` / ``"power-law"`` from degree features alone,
    or ``None`` when the valence distribution is not heavy-tailed."""
    if stats["n_active"] == 0:
        return None
    if (
        stats["max"] >= max(
            HUB_NODE_FRAC * stats["n_active"], 8.0 * stats["median"]
        )
        and stats["tail_frac"] < HUB_TAIL_FRAC
    ):
        return "hub-dominated"
    if (
        stats["tail_frac"] >= POWERLAW_TAIL_FRAC
        or stats["cv"] >= POWERLAW_CV
    ):
        return "power-law"
    return None


def heavy_tailed(mat: CSRMatrix) -> bool:
    """True when the valence distribution is hub-dominated or power-law.

    The probe-free prefix of :func:`classify`'s rule chain — the skewed
    families are decided from the degree distribution alone, never a BFS
    — so this is cheap enough for cache-key derivation and for the
    facade's ``transform="auto"`` resolution
    (:func:`repro.core.transform.resolve_transform`).
    """
    return _skewed_family(_degree_stats(mat)) is not None


def classify_stats(mat: CSRMatrix) -> dict:
    """The features :func:`classify` decides on (exposed for inspection).

    Degree statistics are computed over non-isolated nodes; ``depth`` /
    ``reached`` come from a BFS probe of the largest component and are
    only computed for the uniform-valence regimes (``None`` otherwise) —
    the skewed families are decided from the degree distribution alone.
    """
    stats = _degree_stats(mat)
    if stats["n_active"] == 0:
        stats["family"] = "banded"
        return stats
    degrees = mat.degrees()

    # ordered decision rules; first match wins
    skewed = _skewed_family(stats)
    if skewed is not None:
        stats["family"] = skewed
        return stats
    if stats["bandwidth"] <= max(BANDED_BW_RATIO * stats["mean"], 2.0):
        stats["family"] = "banded"
        return stats

    # uniform-valence regimes: one BFS depth probe splits them
    depth, reached = _largest_component_probe(mat, degrees)
    stats["depth"] = depth
    stats["reached"] = reached
    if depth <= SMALLWORLD_DEPTH_LOG * math.log2(max(reached, 2)):
        stats["family"] = "small-world"
    elif depth >= ROAD_DEPTH_SQRT * math.sqrt(reached):
        stats["family"] = "road-like"
    else:
        stats["family"] = "mesh"
    return stats


def classify(mat: CSRMatrix) -> str:
    """Scenario family of an arbitrary structurally symmetric pattern.

    A small ordered rule set over the degree distribution: a single
    dominant hub with an otherwise thin tail is ``hub-dominated``; a heavy
    tail (many 4x-median outliers, or high valence variation) is
    ``power-law``; a pattern whose bandwidth is on the order of its mean
    valence is ``banded``; the remaining near-uniform patterns split on
    one BFS depth probe — logarithmic depth is ``small-world``,
    ``>= 2 sqrt(n)`` depth is ``road-like``, anything between is ``mesh``.
    """
    return classify_stats(mat)["family"]
