"""Deterministic discrete-event engine driving simulated workers.

Workers are Python generators: algorithm code performs its *real* work on
shared state (mark arrays, the output permutation, signals, the queue) and
yields events telling the engine how many cycles that work cost, or that the
worker must wait for a predicate on shared state::

    yield ("cost", Stage.DISCOVER, cycles)   # work just performed took this long
    yield ("wait", predicate)                # block until predicate() is True

The engine always advances the worker with the smallest simulated clock, so
shared-state mutations interleave in global cycle order — a sequentially
consistent execution.  Waiting workers are re-checked after every step that
completes and are woken at the completion time of the step that satisfied
their predicate, with the waiting interval attributed to ``Stage.STALL``
(the paper's Fig. 6 "Stall" category).

Determinism: identical inputs yield identical executions.  An optional
seeded multiplicative *jitter* perturbs every cost, producing different —
but still reproducible — interleavings; the test-suite uses this to fuzz the
claim that batch RCM returns the serial permutation under any schedule.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.stats import RunStats, Stage

__all__ = ["Engine", "Worker", "SimulationError", "DeadlockError", "Event"]

Event = Tuple  # ("cost", Stage, float) | ("wait", Callable[[], bool])
Worker = Generator[Event, None, None]


class SimulationError(RuntimeError):
    """The simulation exceeded its step budget (runaway worker)."""


class DeadlockError(RuntimeError):
    """No worker is runnable but some are still waiting."""


@dataclass
class _Waiter:
    worker_id: int
    predicate: Callable[[], bool]
    since: float


class Engine:
    """Event-driven executor for a fixed set of worker coroutines.

    Parameters
    ----------
    n_workers:
        number of simulated workers (CPU threads / GPU thread-blocks).
    stats:
        a :class:`RunStats` sized for ``n_workers``; the engine adds cost and
        stall cycles to it and stores the makespan.
    jitter:
        relative amplitude of the seeded per-event cost perturbation
        (0 disables; 0.2 means ±10%).
    seed:
        RNG seed for the jitter stream.
    max_steps:
        hard step budget; exceeding it raises :class:`SimulationError`.
    """

    def __init__(
        self,
        n_workers: int,
        stats: Optional[RunStats] = None,
        *,
        jitter: float = 0.0,
        seed: int = 0,
        max_steps: int = 200_000_000,
        trace: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        self.stats = stats if stats is not None else RunStats(n_workers=n_workers)
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        self.trace_enabled = trace
        self.trace: List[Tuple[float, int, str, float]] = []
        # live counters, readable by cost models for contention scaling
        self._running = 0          # workers neither finished nor waiting
        self._finished = 0
        self.now = 0.0

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Workers currently runnable (contention proxy for cost models)."""
        return max(self._running, 1)

    # ------------------------------------------------------------------
    def run(self, workers: Sequence[Worker]) -> float:
        """Drive ``workers`` to completion; returns the makespan in cycles."""
        if len(workers) != self.n_workers:
            raise ValueError("one coroutine per worker required")
        counter = itertools.count()
        heap: List[Tuple[float, int, int]] = []
        clocks = [0.0] * self.n_workers
        finished = [False] * self.n_workers
        waiters: List[_Waiter] = []
        gens = list(workers)
        self._running = self.n_workers

        for wid in range(self.n_workers):
            heapq.heappush(heap, (0.0, next(counter), wid))

        steps = 0
        makespan = 0.0
        while heap:
            t, _, wid = heapq.heappop(heap)
            self.now = t
            clocks[wid] = t
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"exceeded {self.max_steps} simulation steps "
                    f"(t={t:.0f}, {len(waiters)} waiting)"
                )
            try:
                ev = next(gens[wid])
            except StopIteration:
                finished[wid] = True
                self._running -= 1
                self._finished += 1
                makespan = max(makespan, t)
                self._wake(waiters, heap, counter, t, clocks)
                continue

            kind = ev[0]
            if kind == "cost":
                _, stage, cycles = ev
                cycles = float(cycles)
                if self.jitter:
                    cycles *= 1.0 + self.jitter * (self._rng.random() - 0.5)
                self.stats.add_cycles(wid, stage, cycles)
                if self.trace_enabled:
                    self.trace.append((t, wid, stage.value, cycles))
                done_at = t + cycles
                heapq.heappush(heap, (done_at, next(counter), wid))
                # state already mutated; completion may satisfy waiters
                self._wake(waiters, heap, counter, done_at, clocks)
            elif kind == "wait":
                _, predicate = ev
                if predicate():
                    heapq.heappush(heap, (t, next(counter), wid))
                else:
                    self._running -= 1
                    waiters.append(_Waiter(wid, predicate, t))
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event {ev!r} from worker {wid}")

            if not heap and waiters:
                # one final predicate sweep: a StopIteration above may have
                # satisfied a predicate after the last wake
                self._wake(waiters, heap, counter, self.now, clocks)
                if not heap:
                    info = ", ".join(
                        f"w{w.worker_id}@{w.since:.0f}" for w in waiters
                    )
                    raise DeadlockError(f"all workers blocked: {info}")

        if waiters:
            info = ", ".join(f"w{w.worker_id}@{w.since:.0f}" for w in waiters)
            raise DeadlockError(f"simulation ended with blocked workers: {info}")
        self.stats.makespan = max(makespan, max(clocks) if clocks else 0.0)
        return self.stats.makespan

    # ------------------------------------------------------------------
    def _wake(
        self,
        waiters: List[_Waiter],
        heap: List[Tuple[float, int, int]],
        counter,
        at: float,
        clocks: List[float],
    ) -> None:
        """Re-check waiting predicates; wake satisfied waiters at ``at``."""
        if not waiters:
            return
        still: List[_Waiter] = []
        for w in waiters:
            if w.predicate():
                stall = max(at - w.since, 0.0)
                self.stats.add_cycles(w.worker_id, Stage.STALL, stall)
                if self.trace_enabled:
                    self.trace.append((w.since, w.worker_id, "Stall", stall))
                clocks[w.worker_id] = at
                self._running += 1
                heapq.heappush(heap, (at, next(counter), w.worker_id))
            else:
                still.append(w)
        waiters[:] = still
