"""Per-batch signal chain (Sec. IV-B of the paper).

Each queue slot ``i`` owns one *outgoing* signal read by slot ``i + 1``.
States are strictly monotone::

    NONE < DISCOVERED < COUNTED < COMPLETED

- ``DISCOVERED``  — batches ``0..i`` have all finished (speculative) child
  discovery, i.e. every mark that can beat a successor's is in place.
- ``COUNTED``     — batches ``0..i`` know their exact output counts; the
  payload carries slot ``i+1``'s output offset, its children's queue offset,
  and any *overhang* (forwarded under-full output, Sec. IV-C).
- ``COMPLETED``   — additionally, no pending-unwritten overhang reaches past
  slot ``i``: slot ``i+1`` may safely build batches that include forwarded
  nodes.

Signaling ``COMPLETED`` implies ``COUNTED`` implies ``DISCOVERED`` — the
paper's early-signaling conditions rely on that subsumption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["SignalState", "SignalPayload", "SignalChain"]


class SignalState(enum.IntEnum):
    NONE = 0
    DISCOVERED = 1
    COUNTED = 2
    COMPLETED = 3


@dataclass
class SignalPayload:
    """Data travelling with a ``COUNTED`` (or stronger) signal.

    Attributes
    ----------
    out_next:
        first free index in the output/permutation array after the sender's
        own output — the receiver's output start.
    queue_next:
        first free queue-slot index after the sender's generated batches —
        where the receiver's generated batches will go.
    overhang_start / overhang_end:
        output-array range of nodes forwarded into the receiver's first
        generated batch (``start == end`` → no overhang).  The range is
        always a suffix of the output written so far, so it is contiguous
        with the receiver's own output.
    overhang_valence:
        sum of (scratch-clamped) valences of the forwarded nodes, needed by
        the receiver's batch planning.
    """

    out_next: int
    queue_next: int
    overhang_start: int = 0
    overhang_end: int = 0
    overhang_valence: int = 0

    @property
    def overhang_nodes(self) -> int:
        return self.overhang_end - self.overhang_start

    def has_overhang(self) -> bool:
        """True when forwarded nodes accompany this payload."""
        return self.overhang_end > self.overhang_start


class SignalChain:
    """The chain of per-slot outgoing signals.

    Slot 0's *incoming* side is virtual: the initial batch behaves as if a
    predecessor had already written the start node and completed, so
    ``incoming_state(0) == COMPLETED`` with the bootstrap payload supplied at
    construction.
    """

    def __init__(self, bootstrap: SignalPayload):
        self._states: List[SignalState] = []
        self._payloads: List[Optional[SignalPayload]] = []
        self._bootstrap = bootstrap

    def _ensure(self, i: int) -> None:
        while len(self._states) <= i:
            self._states.append(SignalState.NONE)
            self._payloads.append(None)

    # -- sending ----------------------------------------------------------
    def send(
        self, i: int, state: SignalState, payload: Optional[SignalPayload] = None
    ) -> None:
        """Raise slot ``i``'s outgoing signal to ``state`` (monotone).

        A payload must accompany the first signal at ``COUNTED`` or above;
        later upgrades keep the stored payload.
        """
        self._ensure(i)
        if state < self._states[i]:
            raise ValueError(
                f"signal downgrade on slot {i}: {self._states[i].name} -> {state.name}"
            )
        if state >= SignalState.COUNTED and self._payloads[i] is None:
            if payload is None:
                raise ValueError(f"slot {i}: COUNTED+ signal requires a payload")
            self._payloads[i] = payload
        self._states[i] = state

    # -- receiving --------------------------------------------------------
    def incoming_state(self, i: int) -> SignalState:
        """State signalled by slot ``i``'s predecessor."""
        if i == 0:
            return SignalState.COMPLETED
        self._ensure(i - 1)
        return self._states[i - 1]

    def incoming_payload(self, i: int) -> SignalPayload:
        """Payload from the predecessor; requires ``incoming_state >= COUNTED``."""
        if i == 0:
            return self._bootstrap
        self._ensure(i - 1)
        payload = self._payloads[i - 1]
        if payload is None:
            raise RuntimeError(f"slot {i}: predecessor has not signalled COUNTED yet")
        return payload

    def outgoing_state(self, i: int) -> SignalState:
        """State slot ``i`` has raised so far (``NONE`` before any send)."""
        self._ensure(i)
        return self._states[i]
