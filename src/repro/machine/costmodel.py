"""Cycle-cost models for the simulated CPU and GPU.

Every stage of every RCM variant charges cycles through one of these models,
so the relative behaviour (serial vs leveled vs batch; CPU vs GPU) comes out
of one consistent set of knobs.  The constants are calibrated so that the
*shapes* of the paper's results hold (see EXPERIMENTS.md): batch overhead
makes tiny matrices slower than serial, atomics dominate Discover at low
thread counts, speculative sorting grows with thread count, GPU constant
overheads hurt small inputs while wide fronts amortize them.

Absolute milliseconds are produced via ``cycles / clock_ghz`` purely to give
familiar units; they are **not** comparable to the paper's testbed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = [
    "SerialCostModel",
    "VectorizedCostModel",
    "CPUCostModel",
    "GPUCostModel",
    "SERIAL_CPU",
    "VECTORIZED_CPU",
]


def _log2(k: int) -> float:
    return math.log2(k) if k > 1 else 1.0


@dataclass(frozen=True)
class SerialCostModel:
    """Costs of the single-threaded reference implementation (Alg. 1).

    The serial code has no atomics and excellent cache behaviour (the paper
    attributes CPU-RCM's edge over HSL to exactly that), so per-edge and
    per-node costs are low.
    """

    clock_ghz: float = 4.0
    cycles_per_node: float = 22.0
    cycles_per_edge: float = 9.0
    cycles_per_sorted_element: float = 7.0  # × log2(children of one parent)

    def node(self, degree: int) -> float:
        """Cycles to dequeue, scan and sort one node of the given degree."""
        return (
            self.cycles_per_node
            + degree * self.cycles_per_edge
            + degree * self.cycles_per_sorted_element * _log2(max(degree, 2))
        )

    def run(self, n_nodes: int, n_edges: int, sort_cost: float) -> float:
        """Cycles of a whole serial traversal given aggregate work counts."""
        return (
            n_nodes * self.cycles_per_node
            + n_edges * self.cycles_per_edge
            + sort_cost
        )


#: default serial model shared by baselines
SERIAL_CPU = SerialCostModel()


@dataclass(frozen=True)
class VectorizedCostModel:
    """Costs of the level-synchronous NumPy frontier kernel.

    Work is charged per BFS *level*, not per node: each level pays a fixed
    dispatch overhead (a handful of NumPy kernel launches), streaming
    per-edge gather + mark-array dedup costs, and an ``O(k log k)`` stable
    sort over the level's surviving children.  Deep narrow graphs therefore
    drown in per-level overhead while wide fronts amortize it — the same
    shape as the paper's GPU results, on a single CPU core.
    """

    clock_ghz: float = 4.0
    level_overhead_cycles: float = 1400.0  # kernel dispatch per level
    gather_edge_cycles: float = 1.2        # SIMD gather + visited filter
    dedup_edge_cycles: float = 0.8         # mark-array claim + first check
    sort_element_cycles: float = 1.6       # × log2(level width)

    def level(self, n_edges: float, n_children: int) -> float:
        """Cycles for one frontier expansion producing ``n_children``."""
        sort = (
            n_children * self.sort_element_cycles * _log2(max(n_children, 2))
        )
        return (
            self.level_overhead_cycles
            + n_edges * (self.gather_edge_cycles + self.dedup_edge_cycles)
            + sort
        )

    def run(self, n_levels: int, n_edges: int, sort_cost: float) -> float:
        """Cycles of a whole traversal given aggregate work counts."""
        return (
            n_levels * self.level_overhead_cycles
            + n_edges * (self.gather_edge_cycles + self.dedup_edge_cycles)
            + sort_cost
        )


#: default vectorized-kernel model
VECTORIZED_CPU = VectorizedCostModel()


@dataclass(frozen=True)
class CPUCostModel:
    """Per-stage costs for one CPU thread running batch RCM.

    ``contention(active)`` scales atomic and queue costs with the number of
    concurrently active workers — the simulator passes the live worker count
    so memory-bus interference grows with parallelism, which is what makes
    speculative over-parallelization *reduce* performance on narrow graphs
    (the diagonal pattern in the paper's Fig. 5b).
    """

    clock_ghz: float = 4.0
    # --- queue / batch management ------------------------------------
    fetch_cycles: float = 260.0          # dequeue attempt (lock + cursor)
    batch_setup_cycles: float = 180.0    # load range, init scratch arrays
    enqueue_cycles: float = 240.0        # per generated batch (queue write)
    # --- discovery -----------------------------------------------------
    discover_parent_cycles: float = 26.0
    discover_edge_cycles: float = 11.0
    atomic_cycles: float = 21.0          # atomicMin per probed edge
    found_node_cycles: float = 9.0       # valence fetch + scratch store
    # --- sorting --------------------------------------------------------
    sort_element_cycles: float = 7.5     # × log2(segment)
    # --- rediscovery -----------------------------------------------------
    rediscover_element_cycles: float = 4.0   # plain read + local mark
    # --- signaling --------------------------------------------------------
    signal_read_cycles: float = 24.0
    signal_send_cycles: float = 42.0
    count_batches_cycles: float = 90.0   # plan/estimate child batches
    # --- output ------------------------------------------------------------
    output_node_cycles: float = 7.0
    # --- contention ----------------------------------------------------------
    # Calibrated against the paper's Fig. 6: total compute cycles per thread
    # inflate ≈1.3-1.5× from 1 to 24 threads (the rest of the growth is
    # stall), so the atomic interference slope is gentle.
    contention_slope: float = 0.02       # per extra active worker on atomics
    queue_contention_slope: float = 0.12  # queue ops serialize harder
    # --- architecture ----------------------------------------------------
    temp_limit: int = 4096               # scratch capacity (children/batch)
    supports_temp_overflow: bool = True  # CPU can extend scratch (Sec. IV-C)

    def contention(self, active: int) -> float:
        """Atomic-cost multiplier given concurrently active workers."""
        return 1.0 + self.contention_slope * max(active - 1, 0)

    def queue_contention(self, active: int) -> float:
        """Queue-operation multiplier (serializes harder than atomics)."""
        return 1.0 + self.queue_contention_slope * max(active - 1, 0)

    # ------------------------------------------------------------------
    def fetch(self, active: int) -> float:
        """Dequeue-attempt cost (lock + cursor), contention scaled."""
        return self.fetch_cycles * self.queue_contention(active)

    def batch_setup(self, n_parents: int) -> float:
        """Per-batch initialization: load range, init scratch arrays."""
        return self.batch_setup_cycles + 2.0 * n_parents

    def discover(self, n_parents: int, n_edges: int, n_found: int, active: int) -> float:
        """Speculative discovery: adjacency scan + atomicMin marking."""
        c = self.contention(active)
        return (
            n_parents * self.discover_parent_cycles
            + n_edges * (self.discover_edge_cycles + self.atomic_cycles * c)
            + n_found * self.found_node_cycles
        )

    def sort(self, k: int) -> float:
        """Stable (parent, valence) sort of k speculative children."""
        if k <= 1:
            return 12.0
        return k * self.sort_element_cycles * _log2(k) + 40.0

    def rediscover(self, k: int) -> float:
        """Re-check k stored marks against earlier batches."""
        return 30.0 + k * self.rediscover_element_cycles

    def signal_read(self) -> float:
        """Read the predecessor's signal slot."""
        return self.signal_read_cycles

    def signal_send(self) -> float:
        """Raise the outgoing signal slot."""
        return self.signal_send_cycles

    def count_batches(self, k: int) -> float:
        """signalCount bookkeeping: estimate/plan child batches."""
        return self.count_batches_cycles + 0.5 * k

    def output_write(self, k: int) -> float:
        """Write k confirmed nodes to the permutation array."""
        return 60.0 + k * self.output_node_cycles

    def add_batches(self, k_batches: int, active: int) -> float:
        """Enqueue k generated batches, contention scaled."""
        return 40.0 + k_batches * self.enqueue_cycles * self.queue_contention(active)


@dataclass(frozen=True)
class GPUCostModel:
    """Per-stage costs for one GPU thread-block running batch RCM.

    A *worker* is a cooperative thread array; per-element work divides by the
    (coalescing-adjusted) thread count, while constant overheads — queue
    polling over global memory, signal propagation, block scheduling — are
    much larger than on the CPU.  That is exactly the paper's trade-off: the
    TITAN V loses badly on tiny matrices and wins once fronts are wide.
    """

    clock_ghz: float = 1.4
    block_threads: int = 256
    n_sms: int = 80                     # TITAN V
    blocks_per_sm: int = 2
    # --- queue / batch management (global-memory ring buffer) ----------
    fetch_cycles: float = 900.0
    batch_setup_cycles: float = 500.0
    enqueue_cycles: float = 260.0
    empty_batch_discard_cycles: float = 350.0
    # --- discovery -------------------------------------------------------
    discover_parent_cycles: float = 18.0     # offset load, one thread/parent
    discover_edge_cycles: float = 3.2        # coalesced global load / thread
    atomic_cycles: float = 9.0               # global atomicMin / thread
    found_node_cycles: float = 2.5           # scratch append via atomicAdd
    # --- sorting (CUB-like radix in scratchpad) ---------------------------
    sort_element_cycles: float = 2.2
    sort_pass_overhead: float = 450.0
    # --- rediscovery --------------------------------------------------------
    rediscover_element_cycles: float = 1.2
    # --- signaling ------------------------------------------------------------
    signal_read_cycles: float = 380.0        # non-cached global read + poll
    signal_send_cycles: float = 300.0
    count_batches_cycles: float = 320.0      # prefix sums over scratch
    # --- output ------------------------------------------------------------
    output_node_cycles: float = 1.8
    output_overhead_cycles: float = 260.0
    # --- histogram chunking (Sec. V-B) --------------------------------------
    histogram_cycles: float = 600.0
    chunk_pass_cycles: float = 700.0
    # --- contention -----------------------------------------------------------
    contention_slope: float = 0.004          # atomics across many blocks
    queue_contention_slope: float = 0.02
    # --- architecture -----------------------------------------------------------
    temp_limit: int = 1024                   # scratchpad elements per block
    supports_temp_overflow: bool = False     # must chunk instead (Sec. V-B)
    histogram_bins: int = 128

    @property
    def max_workers(self) -> int:
        return self.n_sms * self.blocks_per_sm

    def contention(self, active: int) -> float:
        """Atomic-cost multiplier across concurrently resident blocks."""
        return 1.0 + self.contention_slope * max(active - 1, 0)

    def queue_contention(self, active: int) -> float:
        """Ring-buffer contention multiplier for global-memory queue ops."""
        return 1.0 + self.queue_contention_slope * max(active - 1, 0)

    # ------------------------------------------------------------------
    def fetch(self, active: int) -> float:
        """Ring-buffer poll over global memory, contention scaled."""
        return self.fetch_cycles * self.queue_contention(active)

    def batch_setup(self, n_parents: int) -> float:
        """Block-leader setup: batch pointers via global memory."""
        return self.batch_setup_cycles + 1.0 * n_parents

    def _threads_per_parent(self, max_children: int) -> int:
        """Last power of two below the max child count (Sec. V-A)."""
        if max_children <= 1:
            return 1
        return 1 << min(int(math.log2(max_children)), int(math.log2(self.block_threads)))

    def discover(
        self,
        n_parents: int,
        n_edges: int,
        n_found: int,
        active: int,
        *,
        max_children: int = 0,
    ) -> float:
        """Block-parallel discovery with per-parent thread assignment."""
        c = self.contention(active)
        tpp = self._threads_per_parent(max_children or (n_edges // max(n_parents, 1) + 1))
        parents_in_flight = max(self.block_threads // tpp, 1)
        # rounds of parent processing across the block
        rounds = math.ceil(n_parents / parents_in_flight) if n_parents else 0
        per_round_edges = n_edges / max(rounds, 1) if rounds else 0
        edge_cycles = (
            rounds
            * math.ceil(per_round_edges / max(parents_in_flight * tpp, 1))
            * (self.discover_edge_cycles + self.atomic_cycles * c)
            * 16.0
        )
        return (
            n_parents * self.discover_parent_cycles
            + edge_cycles
            + math.ceil(n_found / self.block_threads) * self.found_node_cycles * 24.0
        )

    def sort(self, k: int) -> float:
        """CUB-style radix sort over (parent id, valence) in scratchpad."""
        if k <= 1:
            return 60.0
        passes = 4  # radix over (parent id, valence) key
        per_thread = math.ceil(k / self.block_threads)
        return passes * (self.sort_pass_overhead + per_thread * self.sort_element_cycles * 48.0)

    def rediscover(self, k: int) -> float:
        """Block-parallel re-check of k stored marks."""
        return 120.0 + math.ceil(k / self.block_threads) * self.rediscover_element_cycles * 40.0

    def signal_read(self) -> float:
        """Non-cached global read of the predecessor's signal."""
        return self.signal_read_cycles

    def signal_send(self) -> float:
        """Non-cached global write of the outgoing signal."""
        return self.signal_send_cycles

    def count_batches(self, k: int) -> float:
        """Prefix sums over scratch for counts and batch bounds."""
        return self.count_batches_cycles + math.ceil(k / self.block_threads) * 30.0

    def output_write(self, k: int) -> float:
        """Coalesced write of k confirmed nodes."""
        return self.output_overhead_cycles + math.ceil(k / self.block_threads) * self.output_node_cycles * 30.0

    def add_batches(self, k_batches: int, active: int) -> float:
        """Ring-buffer pushes for k generated batches."""
        return 120.0 + k_batches * self.enqueue_cycles * self.queue_contention(active)

    def histogram(self, k: int) -> float:
        """Valence histogram pass (scratchpad-overflow chunking)."""
        return self.histogram_cycles + math.ceil(k / self.block_threads) * 20.0

    def chunk_pass(self, k: int) -> float:
        """One scratch-sized chunk of an oversized single parent."""
        return self.chunk_pass_cycles + math.ceil(k / self.block_threads) * 40.0
