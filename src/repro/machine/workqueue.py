"""Ordered work queue with slot reservation and early termination.

The paper's queue keeps batches "according to their desired execution order"
and hands them out strictly in that order.  Slots are *reserved* ahead of
being filled (early batch generation, Sec. IV-C) and may be filled out of
chronological order — a later batch can finish before an earlier one — so
the queue's head can be an unfilled slot; workers then wait for the fill.

Consumption is take-at-head: a worker takes the head slot only once it is
filled, so batches start in queue order across all workers.  Taking is a
commitment — a taken batch always runs its full signal protocol — and since
takes happen in order, every batch's predecessor has also been taken and
will eventually signal: the chain can never break, even when the
early-termination flag (Sec. IV-D) stops workers from taking further slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["BatchSlot", "WorkQueue"]


@dataclass
class BatchSlot:
    """One queue slot: a contiguous range of the output array used as the
    batch input.  ``empty`` marks padding slots from the GPU's batch-count
    over-estimation; they run the (trivial) signal protocol and are counted
    as discarded rather than executed."""

    index: int
    out_start: int = 0
    out_end: int = 0
    filled: bool = False
    empty: bool = False

    @property
    def n_parents(self) -> int:
        return self.out_end - self.out_start


class WorkQueue:
    """Slot-ordered queue with reservation, ordered takes and early exit."""

    def __init__(self) -> None:
        self._slots: List[BatchSlot] = []
        self._cursor: int = 0
        self.done: bool = False
        # Fig. 3 counters
        self.n_generated: int = 0
        self.n_dequeued: int = 0
        self.n_executed: int = 0
        self.n_empty_discarded: int = 0

    # ------------------------------------------------------------------
    def _ensure(self, idx: int) -> None:
        while len(self._slots) <= idx:
            self._slots.append(BatchSlot(index=len(self._slots)))

    def fill(
        self, idx: int, out_start: int, out_end: int, *, empty: bool = False
    ) -> BatchSlot:
        """Populate slot ``idx`` (reserving intermediate slots as needed)."""
        self._ensure(idx)
        slot = self._slots[idx]
        if slot.filled:
            raise RuntimeError(f"queue slot {idx} filled twice")
        slot.out_start = out_start
        slot.out_end = out_end
        slot.empty = empty or out_end <= out_start
        slot.filled = True
        self.n_generated += 1
        return slot

    # ------------------------------------------------------------------
    def head_ready(self) -> bool:
        """True when the head slot exists and is filled."""
        return self._cursor < len(self._slots) and self._slots[self._cursor].filled

    def take_next(self) -> Optional[BatchSlot]:
        """Take the head slot if it is filled; ``None`` when the head is not
        ready yet.  Callers must check :attr:`done` first — once the
        early-termination flag is set no further slots are handed out."""
        if self.done or not self.head_ready():
            return None
        slot = self._slots[self._cursor]
        self._cursor += 1
        self.n_dequeued += 1
        if slot.empty:
            self.n_empty_discarded += 1
        return slot

    def mark_executed(self) -> None:
        """Count one non-empty batch that ran to completion (Fig. 3)."""
        self.n_executed += 1

    def terminate(self) -> None:
        """Set the early-termination flag (permutation complete)."""
        self.done = True

    # ------------------------------------------------------------------
    @property
    def slots_remaining(self) -> int:
        """Filled-but-never-taken slots (discarded by early termination)."""
        return sum(1 for s in self._slots[self._cursor :] if s.filled)

    def __len__(self) -> int:
        """Number of reserved slots (filled or not)."""
        return len(self._slots)
