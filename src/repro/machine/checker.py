"""Trace invariant checker: audits simulated executions after the fact.

Given an engine trace and the run's statistics, verifies the structural
invariants any valid execution must satisfy — a safety net the test-suite
applies to randomized runs, so a scheduler or accounting bug cannot hide
behind a still-correct permutation:

* per worker, events never overlap in time;
* every event lies within ``[0, makespan]``;
* the per-stage cycle totals reconstructed from the trace equal the
  statistics the engine accumulated (conservation of time);
* workers are only ever stalled or working — no unexplained gaps *while a
  batch is runnable* is not checkable from the trace alone, but total busy +
  stall per worker can never exceed the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.machine.stats import RunStats, Stage

__all__ = ["TraceViolation", "check_trace"]

TraceEvent = Tuple[float, int, str, float]


class TraceViolation(AssertionError):
    """An execution-trace invariant was broken."""


def check_trace(
    trace: Sequence[TraceEvent],
    stats: RunStats,
    *,
    tolerance: float = 1e-6,
) -> None:
    """Raise :class:`TraceViolation` on any broken invariant."""
    makespan = stats.makespan
    per_worker_events: Dict[int, List[Tuple[float, float, str]]] = {}
    stage_totals: Dict[Tuple[int, str], float] = {}

    for start, wid, stage, cycles in trace:
        if cycles < 0:
            raise TraceViolation(f"negative duration: {cycles} (w{wid} {stage})")
        end = start + cycles
        if start < -tolerance or end > makespan + tolerance:
            raise TraceViolation(
                f"event outside [0, makespan]: w{wid} {stage} "
                f"[{start:.0f}, {end:.0f}] vs makespan {makespan:.0f}"
            )
        per_worker_events.setdefault(wid, []).append((start, end, stage))
        key = (wid, stage)
        stage_totals[key] = stage_totals.get(key, 0.0) + cycles

    # 1) no per-worker overlap
    for wid, events in per_worker_events.items():
        events.sort()
        for (s0, e0, st0), (s1, e1, st1) in zip(events, events[1:]):
            if s1 < e0 - tolerance:
                raise TraceViolation(
                    f"worker {wid} overlap: {st0} [{s0:.0f},{e0:.0f}] with "
                    f"{st1} [{s1:.0f},{e1:.0f}]"
                )

    # 2) conservation: trace totals match accumulated statistics
    for wid, times in enumerate(stats.per_worker):
        for stage, cycles in times.cycles.items():
            traced = stage_totals.get((wid, stage.value), 0.0)
            if abs(traced - cycles) > tolerance * max(cycles, 1.0):
                raise TraceViolation(
                    f"worker {wid} {stage.value}: trace says {traced:.1f}, "
                    f"stats say {cycles:.1f}"
                )

    # 3) per-worker occupancy bounded by the makespan
    for wid, events in per_worker_events.items():
        busy = sum(e - s for s, e, _ in events)
        if busy > makespan + tolerance * max(makespan, 1.0):
            raise TraceViolation(
                f"worker {wid} occupies {busy:.0f} cycles > makespan "
                f"{makespan:.0f}"
            )
