"""Execution-trace visualization for simulated runs.

The engine (with ``trace=True``) records every ``(time, worker, stage,
cycles)`` event.  This module renders that trace as an ASCII Gantt chart
(what each worker did when — speculation, waits and the signal chain become
visible) and exports Chrome-tracing JSON (load in ``chrome://tracing`` or
Perfetto) for interactive inspection.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["ascii_gantt", "to_chrome_tracing", "stage_timeline"]

TraceEvent = Tuple[float, int, str, float]  # (start, worker, stage, cycles)

#: one glyph per stage for the Gantt lanes
_GLYPHS: Dict[str, str] = {
    "Discover": "D",
    "Sort": "S",
    "Rediscover": "r",
    "Signal": "g",
    "addNewBatches": "A",
    "Stall": ".",
    "Other": "o",
}


def ascii_gantt(
    trace: Sequence[TraceEvent],
    *,
    width: int = 100,
    n_workers: int = 0,
) -> str:
    """Render the trace as one text lane per worker.

    Each column spans ``makespan / width`` cycles; the glyph shows the stage
    occupying most of that slice (idle = space).  Legend appended.
    """
    if not trace:
        return "(empty trace)"
    makespan = max(t + c for t, _, _, c in trace)
    if makespan <= 0:
        return "(zero-length trace)"
    workers = n_workers or (max(w for _, w, _, _ in trace) + 1)
    scale = makespan / width
    # per worker per column: cycles per stage
    lanes: List[List[Dict[str, float]]] = [
        [dict() for _ in range(width)] for _ in range(workers)
    ]
    for start, wid, stage, cycles in trace:
        end = start + cycles
        c0 = min(int(start / scale), width - 1)
        c1 = min(int(end / scale), width - 1)
        for col in range(c0, c1 + 1):
            col_start = col * scale
            col_end = col_start + scale
            overlap = min(end, col_end) - max(start, col_start)
            if overlap > 0:
                lanes[wid][col][stage] = lanes[wid][col].get(stage, 0.0) + overlap

    lines = [f"simulated Gantt — {makespan:.0f} cycles, {workers} workers"]
    for wid in range(workers):
        row = []
        for col in lanes[wid]:
            if not col:
                row.append(" ")
            else:
                stage = max(col.items(), key=lambda kv: kv[1])[0]
                row.append(_GLYPHS.get(stage, "?"))
        lines.append(f"w{wid:<3d}|{''.join(row)}|")
    legend = "  ".join(f"{g}={s}" for s, g in _GLYPHS.items())
    lines.append(f"     {legend}  ?=unknown stage")
    return "\n".join(lines)


def to_chrome_tracing(
    trace: Sequence[TraceEvent],
    path: Union[str, Path],
    *,
    clock_ghz: float = 4.0,
    thread_names: Optional[Dict[int, str]] = None,
) -> None:
    """Write the trace as Chrome-tracing JSON (microsecond timestamps).

    Every lane gets a ``"ph": "M"`` ``thread_name`` metadata event so
    Perfetto labels it ``worker N`` (or a caller-supplied name via
    ``thread_names``) instead of a bare tid.
    """
    lanes = sorted({wid for _, wid, _, _ in trace})
    names = thread_names or {}
    events: List[dict] = [{
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": wid,
        "args": {"name": names.get(wid, f"worker {wid}")},
    } for wid in lanes]
    for start, wid, stage, cycles in trace:
        events.append({
            "name": stage,
            "ph": "X",
            "ts": start / (clock_ghz * 1e3),     # cycles -> µs
            "dur": cycles / (clock_ghz * 1e3),
            "pid": 0,
            "tid": wid,
            "args": {"cycles": cycles},
        })
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(payload))


def stage_timeline(
    trace: Sequence[TraceEvent], stage: str
) -> List[Tuple[float, float]]:
    """(start, end) intervals of one stage across all workers, time-sorted."""
    spans = [(t, t + c) for t, _, s, c in trace if s == stage]
    spans.sort()
    return spans
