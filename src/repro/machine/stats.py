"""Per-stage cycle accounting and queue counters.

The paper's Fig. 6 decomposes CPU-BATCH runtime into six stages —
Discover, Sort, Rediscover, Signal, addNewBatches and Stall — and Fig. 3
tracks how many queue slots were Generated, Dequeued and Executed (early
termination and empty batches account for the gaps).  :class:`RunStats`
collects exactly those quantities during a simulated run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Stage", "StageTimes", "RunStats"]


class Stage(enum.Enum):
    """Algorithm stages used for cycle attribution (Fig. 6 categories)."""

    DISCOVER = "Discover"
    SORT = "Sort"
    REDISCOVER = "Rediscover"
    SIGNAL = "Signal"
    ADD_BATCHES = "addNewBatches"
    STALL = "Stall"
    OTHER = "Other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Stage ordering used in reports, mirroring Fig. 6's legend.
STAGE_ORDER = [
    Stage.DISCOVER,
    Stage.SORT,
    Stage.REDISCOVER,
    Stage.SIGNAL,
    Stage.ADD_BATCHES,
    Stage.STALL,
]


@dataclass
class StageTimes:
    """Cycle totals per stage for one worker (or aggregated)."""

    cycles: Dict[Stage, float] = field(default_factory=dict)

    def add(self, stage: Stage, cycles: float) -> None:
        """Accumulate cycles into one stage bucket."""
        self.cycles[stage] = self.cycles.get(stage, 0.0) + cycles

    def total(self) -> float:
        """Cycles across all stages."""
        return float(sum(self.cycles.values()))

    def share(self, stage: Stage) -> float:
        """Fraction of this worker's cycles spent in ``stage``."""
        tot = self.total()
        return self.cycles.get(stage, 0.0) / tot if tot else 0.0

    def merged(self, other: "StageTimes") -> "StageTimes":
        """Element-wise sum with another accounting record."""
        out = StageTimes(dict(self.cycles))
        for st, cy in other.cycles.items():
            out.add(st, cy)
        return out


@dataclass
class RunStats:
    """Everything a simulated RCM run reports besides the permutation."""

    n_workers: int = 1
    #: simulated makespan: cycle at which the last worker went idle
    makespan: float = 0.0
    #: per-worker stage cycles, index == worker id
    per_worker: List[StageTimes] = field(default_factory=list)
    # ---- queue counters (Fig. 3) -------------------------------------
    batches_generated: int = 0
    batches_dequeued: int = 0
    batches_executed: int = 0
    batches_empty: int = 0
    #: slots left in the queue when early termination fired
    batches_discarded_by_early_termination: int = 0
    # ---- speculation counters (ablation / Fig. 5b discussion) --------
    nodes_discovered_speculatively: int = 0
    nodes_dropped_by_rediscovery: int = 0
    rediscovery_passes: int = 0
    sorted_elements: int = 0
    #: overhang forwarding events (work-aggregation, Sec. IV-C)
    overhangs_forwarded: int = 0
    overhang_nodes: int = 0
    #: GPU: batches processed through histogram chunking (Sec. V-B)
    chunked_batches: int = 0
    histogram_refinements: int = 0

    def __post_init__(self) -> None:
        if not self.per_worker:
            self.per_worker = [StageTimes() for _ in range(self.n_workers)]

    # ------------------------------------------------------------------
    def add_cycles(self, worker: int, stage: Stage, cycles: float) -> None:
        """Attribute cycles to one worker's stage bucket."""
        self.per_worker[worker].add(stage, cycles)

    def aggregate(self) -> StageTimes:
        """Stage cycles summed over all workers."""
        out = StageTimes()
        for w in self.per_worker:
            out = out.merged(w)
        return out

    def total_cycles(self) -> float:
        """Sum of all cycles across workers (compute + stall)."""
        return self.aggregate().total()

    def stage_shares(self) -> Dict[Stage, float]:
        """Relative cycles per stage over all workers (one Fig. 6 row)."""
        agg = self.aggregate()
        tot = agg.total()
        if not tot:
            return {st: 0.0 for st in STAGE_ORDER}
        return {st: agg.cycles.get(st, 0.0) / tot for st in STAGE_ORDER}

    def milliseconds(self, clock_ghz: float) -> float:
        """Convert the simulated makespan to milliseconds at a clock rate."""
        return self.makespan / (clock_ghz * 1e6)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (per-stage totals + counters)."""
        agg = self.aggregate()
        return {
            "n_workers": self.n_workers,
            "makespan": self.makespan,
            "stage_cycles": {st.value: cy for st, cy in agg.cycles.items()},
            "stage_shares": {st.value: sh for st, sh in self.stage_shares().items()},
            "batches": {
                "generated": self.batches_generated,
                "dequeued": self.batches_dequeued,
                "executed": self.batches_executed,
                "empty": self.batches_empty,
                "discarded_by_early_termination":
                    self.batches_discarded_by_early_termination,
            },
            "speculation": {
                "discovered": self.nodes_discovered_speculatively,
                "dropped": self.nodes_dropped_by_rediscovery,
                "rediscovery_passes": self.rediscovery_passes,
                "sorted_elements": self.sorted_elements,
            },
            "overhangs": {
                "forwarded": self.overhangs_forwarded,
                "nodes": self.overhang_nodes,
            },
            "gpu": {
                "chunked_batches": self.chunked_batches,
                "histogram_refinements": self.histogram_refinements,
            },
        }

    def summary(self) -> str:
        """One-line human-readable digest (workers, makespan, shares)."""
        shares = self.stage_shares()
        parts = ", ".join(f"{st.value}={sh:.1%}" for st, sh in shares.items())
        return (
            f"workers={self.n_workers} makespan={self.makespan:.0f}cy "
            f"gen={self.batches_generated} deq={self.batches_dequeued} "
            f"exec={self.batches_executed} [{parts}]"
        )
