"""Scratchpad (shared-memory) capacity accounting.

On the GPU, each thread-block processes its batch entirely in scratchpad
memory whose size is fixed at launch (Sec. V-B); the CPU analogue is the
per-thread temporary array, which *can* grow (Sec. IV-C accepts occasional
overflows there).  This tracker verifies that simulated batch processing
respects those rules — it exists so tests can assert the GPU variant never
exceeds its allocation while the CPU variant records (rare) extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["Scratchpad", "ScratchpadOverflow"]


class ScratchpadOverflow(RuntimeError):
    """A GPU block tried to hold more temporaries than its allocation."""


@dataclass
class Scratchpad:
    """Capacity tracker for one worker's temporary child storage.

    Parameters
    ----------
    capacity:
        elements the allocation holds (cost-model ``temp_limit``).
    extendable:
        CPU mode — overflow is permitted but recorded; GPU mode raises.
    """

    capacity: int
    extendable: bool
    used: int = 0
    peak: int = 0
    extensions: int = 0

    def acquire(self, k: int) -> None:
        """Reserve ``k`` elements; overflow raises (GPU) or is recorded."""
        self.used += k
        if self.used > self.capacity:
            if not self.extendable:
                raise ScratchpadOverflow(
                    f"scratchpad overflow: {self.used} > {self.capacity}"
                )
            self.extensions += 1
        self.peak = max(self.peak, self.used)

    def release(self, k: int) -> None:
        """Return ``k`` elements to the allocation."""
        self.used = max(self.used - k, 0)

    def reset(self) -> None:
        """Empty the scratchpad (batch finished)."""
        self.used = 0
