"""Multi-device topology (the paper's Sec. VII outlook).

"While our approach is currently limited to a single multicore or many-core
device, its intrinsic properties lend themselves to multi-device and
multi-node extensions, transmitting signals across devices/nodes."

This module models that extension on the simulator: workers are partitioned
across devices; when consecutive batches execute on *different* devices the
signal chain crosses an interconnect and pays extra latency, and marks live
in a unified address space whose atomics carry a remote-access surcharge.
The multi-device benchmark sweeps device counts and link latencies to show
where the signal chain starts to dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceTopology", "NVLINK_LIKE", "PCIE_LIKE", "NETWORK_LIKE"]


@dataclass(frozen=True)
class DeviceTopology:
    """Static worker→device partition plus interconnect costs.

    Workers ``[0, workers_per_device)`` belong to device 0 and so on; a
    signal travelling between batches processed on different devices costs
    ``cross_signal_cycles`` extra, and speculative discovery pays
    ``remote_atomic_factor`` on its atomics (unified-memory traffic).
    """

    n_devices: int = 1
    workers_per_device: int = 4
    cross_signal_cycles: float = 8_000.0   # ~2 µs at 4 GHz (NVLink-ish)
    remote_atomic_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.n_devices < 1 or self.workers_per_device < 1:
            raise ValueError("need at least one device and one worker each")

    @property
    def total_workers(self) -> int:
        return self.n_devices * self.workers_per_device

    def device_of(self, worker_id: int) -> int:
        """Device hosting the given worker (contiguous partition)."""
        return worker_id // self.workers_per_device

    def atomic_surcharge(self) -> float:
        """Average atomic-cost multiplier: a fraction ``(D-1)/D`` of mark
        traffic lands on a remote device in a uniform address distribution."""
        if self.n_devices == 1:
            return 1.0
        remote = (self.n_devices - 1) / self.n_devices
        return 1.0 + remote * (self.remote_atomic_factor - 1.0)


#: two GPUs on an NVLink bridge
NVLINK_LIKE = DeviceTopology(
    n_devices=2, workers_per_device=12,
    cross_signal_cycles=8_000.0, remote_atomic_factor=1.5,
)

#: two devices over PCIe peer-to-peer
PCIE_LIKE = DeviceTopology(
    n_devices=2, workers_per_device=12,
    cross_signal_cycles=30_000.0, remote_atomic_factor=2.5,
)

#: nodes over a network fabric (RDMA-ish)
NETWORK_LIKE = DeviceTopology(
    n_devices=4, workers_per_device=6,
    cross_signal_cycles=120_000.0, remote_atomic_factor=4.0,
)
