"""Simulated parallel architecture.

This package is the substitute for the paper's hardware (12-core Ryzen CPU,
TITAN V GPU): a deterministic discrete-event simulator.  *Workers* (CPU
threads or GPU thread-blocks) execute algorithm stages as coroutines that
yield ``cost`` (cycles, attributed to a stage) and ``wait`` (a predicate on
shared state) events; the engine advances whichever worker has the smallest
simulated clock, so shared-state updates interleave in cycle order.

Why a simulator: this reproduction runs on a single CPython core, where real
threads cannot exhibit the paper's scaling (GIL + one core).  The paper's
claims are *algorithmic* — speedups track the BFS front width, speculation
keeps cores busy, stalls dominate at high thread counts on narrow graphs —
and a cycle-cost simulator surfaces exactly those effects while letting every
RCM variant execute its real data-structure logic (marks, signals, queues,
batches) so the output permutation is computed, not modelled.
"""

from repro.machine.costmodel import CPUCostModel, GPUCostModel, SERIAL_CPU
from repro.machine.engine import Engine, Worker, SimulationError, DeadlockError
from repro.machine.signals import SignalChain, SignalState, SignalPayload
from repro.machine.workqueue import WorkQueue, BatchSlot
from repro.machine.stats import RunStats, StageTimes, Stage

__all__ = [
    "CPUCostModel",
    "GPUCostModel",
    "SERIAL_CPU",
    "Engine",
    "Worker",
    "SimulationError",
    "DeadlockError",
    "SignalChain",
    "SignalState",
    "SignalPayload",
    "WorkQueue",
    "BatchSlot",
    "RunStats",
    "StageTimes",
    "Stage",
]
