"""Central argument validation shared by the facade and the core API.

One home for the parameter checks that used to be scattered ad-hoc through
``core.api`` and ``orderings.api``, with one uniform error format::

    <param> must be one of 'a', 'b', 'c'; got 'x'

so every entry point rejects bad input with the same, predictable message.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = [
    "START_STRATEGIES",
    "check_choice",
    "check_min",
    "check_start",
]

#: named start-node selection strategies accepted everywhere
START_STRATEGIES = ("min-valence", "peripheral")


def check_choice(param: str, value, choices: Sequence[str]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    if value not in choices:
        listed = ", ".join(repr(c) for c in choices)
        raise ValueError(f"{param} must be one of {listed}; got {value!r}")


def check_min(param: str, value: int, minimum: int) -> None:
    """Raise ``ValueError`` unless ``value`` is an int ``>= minimum``."""
    if not isinstance(value, (int, np.integer)) or value < minimum:
        raise ValueError(f"{param} must be an integer >= {minimum}; got {value!r}")


def check_start(start: Union[int, str], n: int) -> None:
    """Validate a start argument: a node id in ``[0, n)`` or a strategy."""
    if isinstance(start, (int, np.integer)):
        if not 0 <= int(start) < n:
            raise ValueError(f"start node {int(start)} out of range [0, {n})")
        return
    if start not in START_STRATEGIES:
        listed = ", ".join(repr(s) for s in START_STRATEGIES)
        raise ValueError(
            f"start strategy must be one of {listed}; got {start!r}"
        )
