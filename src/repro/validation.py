"""Central argument validation shared by the facade and the core API.

One home for the parameter checks that used to be scattered ad-hoc through
``core.api`` and ``orderings.api``, with one uniform error format::

    <param> must be one of 'a', 'b', 'c'; got 'x'

so every entry point rejects bad input with the same, predictable message.
Failures raise :class:`repro.errors.ValidationError` — a ``ValueError``
subclass, so both ``except ValueError`` and the unified
:class:`repro.errors.ReproError` base catch them.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "START_STRATEGIES",
    "check_choice",
    "check_min",
    "check_start",
    "choices_text",
]

#: named start-node selection strategies accepted everywhere
START_STRATEGIES = ("min-valence", "peripheral")


def choices_text(choices: Sequence[str]) -> str:
    """Render a choice tuple as ``'a', 'b', 'c'`` — the one formatting used
    by every error message and derived docstring, so enumerations can never
    drift from the defining tuple."""
    return ", ".join(repr(c) for c in choices)


def check_choice(param: str, value, choices: Sequence[str]) -> None:
    """Raise :class:`ValidationError` unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValidationError(
            f"{param} must be one of {choices_text(choices)}; got {value!r}"
        )


def check_min(param: str, value: int, minimum: int) -> None:
    """Raise :class:`ValidationError` unless ``value`` is an int ``>= minimum``."""
    if not isinstance(value, (int, np.integer)) or value < minimum:
        raise ValidationError(f"{param} must be an integer >= {minimum}; got {value!r}")


def check_start(start: Union[int, str], n: int) -> None:
    """Validate a start argument: a node id in ``[0, n)`` or a strategy."""
    if isinstance(start, (int, np.integer)):
        if not 0 <= int(start) < n:
            raise ValidationError(f"start node {int(start)} out of range [0, {n})")
        return
    if start not in START_STRATEGIES:
        raise ValidationError(
            "start strategy must be one of "
            f"{choices_text(START_STRATEGIES)}; got {start!r}"
        )
