"""Sloan's algorithm for profile and wavefront reduction.

S. Sloan, "An algorithm for profile and wavefront reduction of sparse
matrices", IJNME 23(2), 1986 — reference [21] of the paper.  Sloan numbers
nodes by a priority balancing local wavefront growth against global progress
toward the far end of a pseudo-diameter:

    P(i) = -W1 * incr(i) + W2 * dist(i)

``incr(i)`` is how many nodes numbering ``i`` would add to the wavefront
(its inactive/preactive neighbours, plus itself if not yet in the front) and
``dist(i)`` the BFS distance to the end node.  Nodes progress through the
classical states inactive → preactive → active → postactive.

Implementation: lazy binary heap — every state change re-pushes the affected
nodes; stale entries are detected on pop by recomputing the priority.
Classical weights W1=2, W2=1.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels
from repro.core.peripheral import find_pseudo_peripheral

__all__ = ["sloan", "sloan_component", "pseudo_diameter"]

_INACTIVE, _PREACTIVE, _ACTIVE, _POSTACTIVE = 0, 1, 2, 3


def pseudo_diameter(mat: CSRMatrix, members: np.ndarray) -> Tuple[int, int]:
    """A (start, end) pair spanning a pseudo-diameter of one component.

    Start is the pseudo-peripheral node found by the paper's naive search
    seeded at the minimum-valence member; end is a minimum-valence node on
    the start's deepest BFS level.
    """
    valence = np.diff(mat.indptr)
    seed = int(members[np.argmin(valence[members])])
    s = find_pseudo_peripheral(mat, seed).node
    levels = bfs_levels(mat, s)
    depth = int(levels[members].max())
    last = members[levels[members] == depth]
    e = int(last[np.argmin(valence[last])])
    return s, e


def sloan_component(
    mat: CSRMatrix,
    start: int,
    end: int,
    *,
    w1: int = 2,
    w2: int = 1,
) -> np.ndarray:
    """Sloan ordering of the component containing ``start``.

    ``end`` (same component) supplies the distance field.  Returns the
    numbered nodes in order, ``start`` first.
    """
    n = mat.n
    indptr, indices = mat.indptr, mat.indices
    dist = bfs_levels(mat, end)
    if dist[start] < 0:
        raise ValueError("start and end lie in different components")

    state = np.full(n, _INACTIVE, dtype=np.int8)

    def incr(i: int) -> int:
        nbrs = indices[indptr[i] : indptr[i + 1]]
        growth = int(np.count_nonzero(state[nbrs] <= _PREACTIVE))
        if state[i] == _PREACTIVE or state[i] == _INACTIVE:
            growth += 1
        return growth

    def priority(i: int) -> int:
        return -w1 * incr(i) + w2 * int(dist[i])

    heap: List[Tuple[int, int, int]] = []  # (-priority, tiebreak id, node)

    def push(i: int) -> None:
        heapq.heappush(heap, (-priority(i), i, i))

    def touch(i: int) -> None:
        """Re-queue ``i`` and every non-postactive neighbour: their ``incr``
        may have changed with ``i``'s state."""
        if state[i] != _POSTACTIVE:
            push(i)
        for j in indices[indptr[i] : indptr[i + 1]]:
            if state[j] in (_PREACTIVE, _ACTIVE):
                push(int(j))

    state[start] = _PREACTIVE
    push(start)
    order = np.empty(n, dtype=np.int64)
    count = 0

    while heap:
        neg_p, _, i = heapq.heappop(heap)
        if state[i] == _POSTACTIVE or state[i] == _INACTIVE:
            continue
        if -neg_p != priority(i):
            continue  # stale entry; a fresher one is in the heap
        # numbering i: its inactive neighbours enter the front (preactive)
        for j in indices[indptr[i] : indptr[i + 1]]:
            if state[j] == _INACTIVE:
                state[j] = _PREACTIVE
                touch(int(j))
        state[i] = _POSTACTIVE
        order[count] = i
        count += 1
        touch(i)
        # neighbours of the numbered node join the wavefront for real
        for j in indices[indptr[i] : indptr[i + 1]]:
            if state[j] == _PREACTIVE:
                state[j] = _ACTIVE
                touch(int(j))
    return order[:count]


def sloan(mat: CSRMatrix, *, w1: int = 2, w2: int = 1) -> np.ndarray:
    """Sloan ordering of the whole matrix, component by component.

    Components are ordered by smallest member (the library convention);
    within each, a pseudo-diameter picks the start/end pair.
    """
    n = mat.n
    seen = np.zeros(n, dtype=bool)
    parts: List[np.ndarray] = []
    for seed in range(n):
        if seen[seed]:
            continue
        members = np.flatnonzero(bfs_levels(mat, seed) >= 0)
        seen[members] = True
        s, e = pseudo_diameter(mat, members)
        parts.append(sloan_component(mat, s, e, w1=w1, w2=w2))
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
