"""King's ordering — the wavefront-greedy member of the CM family.

I. P. King (1970); implemented alongside GPS in Lewis's TOMS 582 ("Gibbs-
King", the paper's reference [23]).  Where Cuthill-McKee numbers a parent's
children by *valence*, King numbers next whichever eligible node adds the
fewest **new** nodes to the wavefront — a locally optimal front-growth rule
that often beats RCM on profile at slightly higher cost.

Eligible nodes are those adjacent to the numbered set (within the current
component); ties break by valence, then node id (deterministic).  Like RCM
the result is reversed.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels

__all__ = ["king", "king_component"]


def king_component(mat: CSRMatrix, start: int) -> np.ndarray:
    """King ordering of the component containing ``start`` (start first)."""
    n = mat.n
    indptr, indices = mat.indptr, mat.indices
    valence = np.diff(indptr)
    numbered = np.zeros(n, dtype=bool)
    eligible = np.zeros(n, dtype=bool)

    # growth(i) = neighbours not yet numbered and not yet eligible
    # (numbering i drags exactly those into the wavefront)
    def growth(i: int) -> int:
        nbrs = indices[indptr[i] : indptr[i + 1]]
        return int(np.count_nonzero(~numbered[nbrs] & ~eligible[nbrs]))

    heap: List = []

    def push(i: int) -> None:
        heapq.heappush(heap, (growth(i), int(valence[i]), i))

    def make_eligible(j: int) -> None:
        """Add ``j`` to the candidate front and propagate the growth drop:
        every eligible neighbour of ``j`` now drags one node fewer into the
        wavefront, so it needs a fresh (decreased-key) heap entry."""
        eligible[j] = True
        push(j)
        for k in indices[indptr[j] : indptr[j + 1]]:
            kk = int(k)
            if eligible[kk] and not numbered[kk]:
                push(kk)

    order = np.empty(n, dtype=np.int64)
    order[0] = start
    numbered[start] = True
    count = 1
    for j in indices[indptr[start] : indptr[start + 1]]:
        if not eligible[j]:
            make_eligible(int(j))

    while heap:
        g, v, i = heapq.heappop(heap)
        if numbered[i]:
            continue
        if g != growth(i):
            continue  # stale entry; a fresher (lower-key) one exists
        numbered[i] = True
        order[count] = i
        count += 1
        for j in indices[indptr[i] : indptr[i + 1]]:
            jj = int(j)
            if not numbered[jj] and not eligible[jj]:
                make_eligible(jj)
    return order[:count]


def king(mat: CSRMatrix) -> np.ndarray:
    """Reverse King ordering of the whole matrix (component by component;
    start = minimum-valence member, the classical choice)."""
    n = mat.n
    seen = np.zeros(n, dtype=bool)
    valence = np.diff(mat.indptr)
    parts: List[np.ndarray] = []
    for seed in range(n):
        if seen[seed]:
            continue
        members = np.flatnonzero(bfs_levels(mat, seed) >= 0)
        seen[members] = True
        start = int(members[np.argmin(valence[members])])
        parts.append(king_component(mat, start)[::-1])
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
