"""Gibbs-Poole-Stockmeyer (GPS) bandwidth-reducing ordering.

N. Gibbs, W. Poole, P. Stockmeyer, "An algorithm for reducing the bandwidth
and profile of a sparse matrix", SINUM 13(2), 1976 — reference [22] of the
paper.  GPS refines RCM with two ideas:

1. **better endpoints** — an iterated pseudo-diameter search that examines
   every minimum-width candidate on the last level (we use the shrinking
   strategy: candidates sorted by degree, keep the BFS with smallest width);
2. **combined level structure** — merge the rooted level structures from
   both endpoints, assigning free nodes to whichever side keeps level widths
   small, then number level by level in CM fashion.

This implementation follows the textbook structure (Lewis's TOMS 582
description) at "reference quality": clarity over micro-optimization — it
exists as a quality baseline for the ordering comparison benchmark.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels

__all__ = ["gibbs_poole_stockmeyer", "gps_component", "gps_endpoints"]


def _level_widths(levels: np.ndarray, members: np.ndarray) -> np.ndarray:
    lv = levels[members]
    return np.bincount(lv[lv >= 0])


def gps_endpoints(mat: CSRMatrix, members: np.ndarray) -> Tuple[int, int]:
    """GPS endpoint search: iterate BFS from last-level candidates, keeping
    the deepest structure; among equal depths prefer the narrowest."""
    valence = np.diff(mat.indptr)
    v = int(members[np.argmin(valence[members])])
    best_depth = -1
    best_width = np.iinfo(np.int64).max
    u = v
    for _ in range(8):
        levels = bfs_levels(mat, v)
        depth = int(levels[members].max())
        if depth <= best_depth:
            break
        best_depth = depth
        last = members[levels[members] == depth]
        # examine low-degree candidates on the last level (shrinking set)
        cands = last[np.argsort(valence[last], kind="stable")][:5]
        best_cand = None
        for c in cands:
            c_levels = bfs_levels(mat, int(c))
            c_depth = int(c_levels[members].max())
            c_width = int(_level_widths(c_levels, members).max())
            if c_depth > best_depth:
                # deeper structure found: restart from it
                best_cand = (int(c), c_width, c_depth)
                break
            if c_width < best_width:
                best_cand = (int(c), c_width, c_depth)
                best_width = c_width
        if best_cand is None:
            u = int(cands[0])
            break
        u = best_cand[0]
        if best_cand[2] <= best_depth and best_cand[2] != -1:
            if best_cand[2] < best_depth or True:
                # converged: deepest structure reached
                break
        v = u
    return v, u


def _combined_levels(
    mat: CSRMatrix, members: np.ndarray, s: int, e: int
) -> np.ndarray:
    """Combined level assignment from the (s, e) endpoint pair.

    A node at distance ``d_s`` from s and ``d_e`` from e with total depth
    ``k`` is *fixed* when ``d_s == k - d_e`` (both structures agree); free
    nodes go to the side whose level widths stay smaller (GPS's balancing
    step, applied per connected block of free nodes in descending size).
    """
    ls = bfs_levels(mat, s)
    le = bfs_levels(mat, e)
    depth = int(ls[members].max())
    combined = np.full(mat.n, -1, dtype=np.int64)

    fixed = members[(ls[members] + le[members]) == depth]
    combined[fixed] = ls[fixed]
    free = members[combined[members] < 0]
    if free.size == 0:
        return combined

    # connected blocks of free nodes, largest first (GPS prescription)
    free_set = np.zeros(mat.n, dtype=bool)
    free_set[free] = True
    blocks: List[np.ndarray] = []
    seen = np.zeros(mat.n, dtype=bool)
    indptr, indices = mat.indptr, mat.indices
    for f in free:
        if seen[f]:
            continue
        stack = [int(f)]
        seen[f] = True
        block = []
        while stack:
            x = stack.pop()
            block.append(x)
            for y in indices[indptr[x] : indptr[x + 1]]:
                if free_set[y] and not seen[y]:
                    seen[y] = True
                    stack.append(int(y))
        blocks.append(np.asarray(block, dtype=np.int64))
    blocks.sort(key=len, reverse=True)

    widths = np.bincount(combined[fixed], minlength=depth + 1).astype(np.int64)
    for block in blocks:
        # candidate level assignments for this block from either structure
        via_s = ls[block]
        via_e = depth - le[block]
        w_s = widths.copy()
        np.add.at(w_s, via_s, 1)
        w_e = widths.copy()
        np.add.at(w_e, via_e, 1)
        if int(w_s.max()) <= int(w_e.max()):
            combined[block] = via_s
            widths = w_s
        else:
            combined[block] = via_e
            widths = w_e
    return combined


def gps_component(mat: CSRMatrix, members: np.ndarray) -> np.ndarray:
    """GPS ordering of one component: combined levels + CM-style numbering.

    Within each combined level, nodes adjacent to the previous level are
    numbered first, grouped by parent (in parent numbering order) and sorted
    by valence within each group — the Cuthill-McKee discipline; nodes with
    no numbered neighbour yet (possible because combined levels differ from
    the rooted BFS) follow by ascending valence.
    """
    s, e = gps_endpoints(mat, members)
    combined = _combined_levels(mat, members, s, e)
    valence = np.diff(mat.indptr)
    indptr, indices = mat.indptr, mat.indices

    depth = int(combined[members].max())
    numbered = np.zeros(mat.n, dtype=bool)
    # the start node may not sit on combined level 0 when the block
    # balancing flipped its side; fall back to a minimum-valence level-0 node
    level0 = members[combined[members] == 0]
    first = s if combined[s] == 0 else int(level0[np.argmin(valence[level0])])
    order: List[int] = [first]
    numbered[first] = True
    prev_level: List[int] = [first]
    # remaining level-0 nodes
    rest0 = sorted(
        (int(x) for x in level0 if not numbered[x]),
        key=lambda x: (int(valence[x]), x),
    )
    for x in rest0:
        numbered[x] = True
    order.extend(rest0)
    prev_level.extend(rest0)

    for lvl in range(1, depth + 1):
        current: List[int] = []
        for parent in prev_level:
            children = [
                int(j)
                for j in indices[indptr[parent] : indptr[parent + 1]]
                if not numbered[j] and combined[j] == lvl
            ]
            children.sort(key=lambda x: (int(valence[x]), x))
            for c in children:
                numbered[c] = True
            current.extend(children)
        level_nodes = members[combined[members] == lvl]
        rest = sorted(
            (int(x) for x in level_nodes if not numbered[x]),
            key=lambda x: (int(valence[x]), x),
        )
        for x in rest:
            numbered[x] = True
        current.extend(rest)
        order.extend(current)
        prev_level = current
    return np.asarray(order, dtype=np.int64)


def gibbs_poole_stockmeyer(mat: CSRMatrix) -> np.ndarray:
    """GPS ordering (reversed, RCM-style) of the whole matrix."""
    n = mat.n
    seen = np.zeros(n, dtype=bool)
    parts: List[np.ndarray] = []
    for seed in range(n):
        if seen[seed]:
            continue
        members = np.flatnonzero(bfs_levels(mat, seed) >= 0)
        seen[members] = True
        part = gps_component(mat, members)
        parts.append(part[::-1])
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
