"""Uniform dispatcher over every ordering the library implements.

``order(mat, algorithm)`` returns a whole-matrix permutation for any of the
heuristics — RCM (through the main API), Sloan, GPS, King, minimum degree,
spectral — plus a quality report helper, so comparison tooling (the CLI's
``compare``, the quality benchmark) has one entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.bandwidth import bandwidth_after, envelope_size, rms_wavefront

__all__ = ["ALGORITHMS", "order", "quality", "OrderingQuality"]


def _rcm(mat: CSRMatrix) -> np.ndarray:
    from repro.core.api import reverse_cuthill_mckee

    return reverse_cuthill_mckee(mat, start="peripheral").permutation


def _sloan(mat):
    from repro.orderings.sloan import sloan

    return sloan(mat)


def _gps(mat):
    from repro.orderings.gps import gibbs_poole_stockmeyer

    return gibbs_poole_stockmeyer(mat)


def _king(mat):
    from repro.orderings.king import king

    return king(mat)


def _mindeg(mat):
    from repro.orderings.mindeg import minimum_degree

    return minimum_degree(mat)


def _spectral(mat):
    from repro.orderings.spectral import spectral_ordering

    return spectral_ordering(mat)


ALGORITHMS: Dict[str, Callable[[CSRMatrix], np.ndarray]] = {
    "rcm": _rcm,
    "sloan": _sloan,
    "gps": _gps,
    "king": _king,
    "minimum-degree": _mindeg,
    "spectral": _spectral,
}


def order(mat: CSRMatrix, algorithm: str = "rcm") -> np.ndarray:
    """Whole-matrix permutation under the named heuristic."""
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown ordering {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    return ALGORITHMS[algorithm](mat)


@dataclass(frozen=True)
class OrderingQuality:
    algorithm: str
    bandwidth: int
    envelope: int
    rms_wavefront: float


def quality(mat: CSRMatrix, algorithm: str = "rcm") -> OrderingQuality:
    """Run one heuristic and measure the classical quality triple."""
    perm = order(mat, algorithm)
    after = mat.permute_symmetric(perm)
    return OrderingQuality(
        algorithm=algorithm,
        bandwidth=bandwidth_after(mat, perm),
        envelope=envelope_size(after),
        rms_wavefront=rms_wavefront(after),
    )
