"""Legacy ordering dispatcher — superseded by :func:`repro.reorder`.

``order(mat, algorithm)`` finished its deprecation cycle and now raises
:class:`repro.errors.RemovedAPIError`; call
``repro.reorder(mat, algorithm=...)`` and read the permutation off the
returned :class:`~repro.core.api.ReorderResult`.

:func:`quality` is still the home of the classical quality triple
(bandwidth, envelope, RMS wavefront) and now accepts a precomputed
permutation so comparison tooling that already ran the algorithm does not
pay for it twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.bandwidth import bandwidth_after, envelope_size, rms_wavefront

__all__ = ["ALGORITHMS", "order", "quality", "OrderingQuality"]

#: algorithm names accepted by :func:`order` / :func:`quality` — identical
#: to :data:`repro.facade.ALGORITHMS` (kept as a tuple here so legacy
#: ``for name in ALGORITHMS`` loops keep working)
ALGORITHMS = ("rcm", "sloan", "gps", "king", "minimum-degree", "spectral")


def _facade_kwargs(algorithm: str) -> dict:
    """Facade arguments reproducing this module's historical behaviour
    (RCM always used a pseudo-peripheral start here)."""
    if algorithm == "rcm":
        return {"algorithm": "rcm", "start": "peripheral"}
    return {"algorithm": algorithm}


def order(*args, **kwargs):
    """Removed — use :func:`repro.reorder`.

    Deprecated in 1.1 (with a working shim), removed in 1.2.  The
    equivalent facade call is
    ``repro.reorder(mat, algorithm=..., start="peripheral").permutation``
    for RCM (this entry point always used a pseudo-peripheral start) and
    ``repro.reorder(mat, algorithm=...).permutation`` otherwise.

    .. deprecated:: 1.1
    .. versionremoved:: 1.2
       raises :class:`repro.errors.RemovedAPIError`.
    """
    from repro.errors import RemovedAPIError

    raise RemovedAPIError(
        "orderings.api.order() was removed in 1.2; call "
        "repro.reorder(mat, algorithm=...).permutation instead "
        "(start='peripheral' reproduces order()'s RCM behaviour)"
    )


@dataclass(frozen=True)
class OrderingQuality:
    algorithm: str
    bandwidth: int
    envelope: int
    rms_wavefront: float


def quality(
    mat: CSRMatrix,
    algorithm: str = "rcm",
    *,
    permutation: Optional[np.ndarray] = None,
) -> OrderingQuality:
    """Measure the classical quality triple of one heuristic.

    Pass ``permutation`` when the caller already computed it (e.g. the
    CLI's ``compare``, which also times the run) — the algorithm is then
    not re-executed and only the metrics are evaluated.
    """
    from repro.facade import reorder
    from repro.validation import check_choice

    check_choice("algorithm", algorithm, ALGORITHMS)
    if permutation is None:
        permutation = reorder(mat, **_facade_kwargs(algorithm)).permutation
    else:
        permutation = np.asarray(permutation)
        if permutation.shape != (mat.n,) or not np.array_equal(
            np.sort(permutation), np.arange(mat.n)
        ):
            raise ValueError(
                f"permutation must be a permutation of range({mat.n})"
            )
    after = mat.permute_symmetric(permutation)
    return OrderingQuality(
        algorithm=algorithm,
        bandwidth=bandwidth_after(mat, permutation),
        envelope=envelope_size(after),
        rms_wavefront=rms_wavefront(after),
    )
