"""Alternative bandwidth/profile-reducing orderings (related-work baselines).

The paper's related work surveys the classical alternatives to RCM —
minimum degree, Sloan, GPS, spectral — and notes that "studies have shown
that hybrid approaches using RCM or Sloan achieve the best results" while
"in practice RCM is still the go-to method, due to its good reordering and
simplicity".  This subpackage implements those alternatives so the claim can
be measured: ``benchmarks/bench_orderings.py`` compares bandwidth, profile
and wavefront quality across heuristics on the test set.

All functions take a structurally symmetric :class:`~repro.sparse.CSRMatrix`
and return a permutation in the same convention as
:func:`repro.core.api.reverse_cuthill_mckee` (``perm[k]`` = old index at new
position ``k``), covering every component.
"""

from repro.orderings.sloan import sloan
from repro.orderings.gps import gibbs_poole_stockmeyer
from repro.orderings.king import king
from repro.orderings.mindeg import minimum_degree
from repro.orderings.spectral import spectral_ordering
from repro.orderings.supervariables import (
    find_supervariables,
    compress_supervariables,
    expand_permutation,
    rcm_with_supervariables,
)

__all__ = [
    "sloan",
    "gibbs_poole_stockmeyer",
    "king",
    "minimum_degree",
    "spectral_ordering",
    "find_supervariables",
    "compress_supervariables",
    "expand_permutation",
    "rcm_with_supervariables",
]
