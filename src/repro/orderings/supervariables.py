"""Supervariable compression for RCM.

The paper notes that HSL's RCM "optimizations focus on performance enhancing
factors such as determining supervariables": sets of nodes with *identical
adjacency structure* (common in FEM matrices where several degrees of
freedom share a mesh node) can be collapsed into one representative,
reordered, and expanded — the permutation quality is unchanged while the
graph the core algorithm traverses shrinks.

Two nodes are in one supervariable when their closed neighbourhoods agree:
``adj(u) ∪ {u} == adj(v) ∪ {v}``.  Detection is a hash-partition refinement
over sorted adjacency keys — O(nnz log) with NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix, coo_to_csr

__all__ = [
    "find_supervariables",
    "compress_supervariables",
    "expand_permutation",
    "rcm_with_supervariables",
]


def find_supervariables(mat: CSRMatrix) -> np.ndarray:
    """Label nodes by supervariable: equal labels = identical closed
    neighbourhoods.  Labels are the smallest member id of each group."""
    n = mat.n
    # closed-neighbourhood key: sorted adjacency with self inserted
    keys = []
    for i in range(n):
        nbrs = mat.row(i)
        closed = np.union1d(nbrs, [i])
        keys.append(closed.tobytes())
    groups: dict = {}
    labels = np.empty(n, dtype=np.int64)
    for i, k in enumerate(keys):
        if k in groups:
            labels[i] = groups[k]
        else:
            groups[k] = i
            labels[i] = i
    return labels


@dataclass
class CompressedGraph:
    """Quotient graph over supervariables."""

    mat: CSRMatrix
    #: representative's compressed index per original node
    node_to_super: np.ndarray
    #: original node ids per supervariable (in ascending id order)
    members: List[np.ndarray]
    #: multiplicity per supervariable
    sizes: np.ndarray


def compress_supervariables(mat: CSRMatrix) -> CompressedGraph:
    """Build the quotient graph: one node per supervariable."""
    labels = find_supervariables(mat)
    reps = np.unique(labels)
    index_of = {int(r): k for k, r in enumerate(reps)}
    node_to_super = np.array([index_of[int(l)] for l in labels], dtype=np.int64)

    members: List[np.ndarray] = [
        np.flatnonzero(labels == r).astype(np.int64) for r in reps
    ]
    sizes = np.array([m.size for m in members], dtype=np.int64)

    rows: List[int] = []
    cols: List[int] = []
    for k, r in enumerate(reps):
        for j in mat.row(int(r)):
            kj = node_to_super[int(j)]
            if kj != k:
                rows.append(k)
                cols.append(int(kj))
    cmat = coo_to_csr(reps.size, np.asarray(rows, dtype=np.int64),
                      np.asarray(cols, dtype=np.int64))
    return CompressedGraph(
        mat=cmat, node_to_super=node_to_super, members=members, sizes=sizes
    )


def expand_permutation(compressed: CompressedGraph, perm: np.ndarray) -> np.ndarray:
    """Expand a quotient-graph permutation back to original node ids.

    Members of each supervariable appear consecutively, ascending id —
    matching serial RCM's stable tie-break (identical neighbourhoods imply
    identical valence, so adjacency order decides, which is id order)."""
    parts = [compressed.members[int(k)] for k in perm]
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)


def rcm_with_supervariables(mat: CSRMatrix, start: int) -> np.ndarray:
    """Serial RCM through supervariable compression.

    Returns an RCM-quality permutation of the component containing
    ``start``.  Note: exact equality with plain serial RCM holds when the
    compressed graph's valences order the same way as the original's
    (supervariable members contribute multiplicity); like HSL, we reorder
    the quotient by *weighted* valence — the sum of member counts of the
    neighbours — to preserve the original tie-break structure.
    """
    from repro.sparse.graph import bfs_levels

    comp = compress_supervariables(mat)
    cstart = int(comp.node_to_super[start])
    cmat = comp.mat
    # weighted valence: what the original row length would be
    weights = comp.sizes
    wval = np.zeros(cmat.n, dtype=np.int64)
    for k in range(cmat.n):
        wval[k] = int(weights[cmat.row(k)].sum()) + (int(weights[k]) - 1)

    # CM on the quotient with weighted valences
    n = cmat.n
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    order[0] = cstart
    visited[cstart] = True
    head, tail = 0, 1
    indptr, indices = cmat.indptr, cmat.indices
    while head < tail:
        p = order[head]
        head += 1
        ch = indices[indptr[p] : indptr[p + 1]]
        fresh = ch[~visited[ch]]
        if fresh.size:
            visited[fresh] = True
            fresh = fresh[np.argsort(wval[fresh], kind="stable")]
            order[tail : tail + fresh.size] = fresh
            tail += fresh.size
    cm = order[:tail]
    expanded = expand_permutation(comp, cm)
    return expanded[::-1].copy()
