"""Minimum-degree ordering (fill-reducing baseline).

H. Markowitz's pivoting rule specialized to symmetric elimination — the
paper's related work lists minimum degree among the classical reordering
heuristics [18].  Unlike RCM/Sloan/GPS it targets *fill-in* rather than
bandwidth: it repeatedly eliminates a minimum-degree node and connects its
remaining neighbours into a clique (the quotient-graph update).

This is the plain (non-multiple, non-approximate) variant with lazy heap
updates; the ordering-quality benchmark contrasts its profile/bandwidth
against the band-oriented heuristics — minimum degree typically *loses* on
bandwidth while winning on fill, which is exactly why RCM remains the tool
for the paper's use cases.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["minimum_degree"]


def minimum_degree(mat: CSRMatrix, *, max_clique_growth: int = 10_000_000) -> np.ndarray:
    """Minimum-degree elimination order (ties by node id).

    ``max_clique_growth`` caps the total fill edges materialized in the
    quotient graph; exceeding it raises — protecting against dense-hub
    matrices where plain minimum degree degenerates.
    """
    n = mat.n
    adj: List[Set[int]] = [set(map(int, mat.row(i))) for i in range(n)]
    for i in range(n):
        adj[i].discard(i)

    heap: List[Tuple[int, int]] = [(len(adj[i]), i) for i in range(n)]
    heapq.heapify(heap)
    eliminated = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    count = 0
    fill_budget = max_clique_growth

    while heap:
        deg, i = heapq.heappop(heap)
        if eliminated[i] or deg != len(adj[i]):
            continue  # stale entry
        order[count] = i
        count += 1
        eliminated[i] = True
        nbrs = [j for j in adj[i] if not eliminated[j]]
        # clique the remaining neighbours (symbolic elimination)
        for a_idx in range(len(nbrs)):
            a = nbrs[a_idx]
            adj[a].discard(i)
            for b_idx in range(a_idx + 1, len(nbrs)):
                b = nbrs[b_idx]
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
                    fill_budget -= 1
                    if fill_budget < 0:
                        raise RuntimeError(
                            "minimum-degree fill explosion; raise "
                            "max_clique_growth or use RCM for this matrix"
                        )
        adj[i].clear()
        for a in nbrs:
            heapq.heappush(heap, (len(adj[a]), a))

    return order[:count]
