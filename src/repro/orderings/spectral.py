"""Spectral envelope-reducing ordering (Fiedler vector).

Barnard, Pothen, Simon, "A spectral algorithm for envelope reduction of
sparse matrices", NLAA 2(4), 1995 — reference [25] of the paper.  Nodes are
sorted by their component of the Fiedler vector (the eigenvector of the
graph Laplacian's second-smallest eigenvalue); for mesh-like graphs this
produces smooth, low-envelope orderings, at the cost of an eigensolve.

Computed per component with ``scipy.sparse.linalg.eigsh`` (shift-invert on
tiny components falls back to a dense solve).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels

__all__ = ["spectral_ordering", "fiedler_vector"]


def fiedler_vector(mat: CSRMatrix, members: np.ndarray, *, seed: int = 0) -> np.ndarray:
    """Fiedler vector of one component's Laplacian (values per member)."""
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    m = members.size
    if m == 1:
        return np.zeros(1)
    local = {int(g): k for k, g in enumerate(members)}
    rows: List[int] = []
    cols: List[int] = []
    for g in members:
        for j in mat.row(int(g)):
            jj = int(j)
            if jj in local and jj != int(g):
                rows.append(local[int(g)])
                cols.append(local[jj])
    a = sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(m, m)
    )
    deg = np.asarray(a.sum(axis=1)).ravel()
    lap = sp.diags(deg) - a

    if m <= 64:
        w, v = np.linalg.eigh(lap.toarray())
        return v[:, 1]
    rng = np.random.default_rng(seed)
    v0 = rng.random(m)
    w, v = spla.eigsh(lap.tocsc(), k=2, sigma=-1e-4, which="LM", v0=v0)
    order = np.argsort(w)
    return v[:, order[1]]


def spectral_ordering(mat: CSRMatrix, *, seed: int = 0) -> np.ndarray:
    """Spectral ordering of the whole matrix, component by component.

    Within a component, nodes sort by Fiedler value (ties by node id, and
    the sign is fixed so the minimum-valence endpoint comes first — making
    the ordering deterministic).
    """
    n = mat.n
    seen = np.zeros(n, dtype=bool)
    parts: List[np.ndarray] = []
    valence = np.diff(mat.indptr)
    for s in range(n):
        if seen[s]:
            continue
        members = np.flatnonzero(bfs_levels(mat, s) >= 0).astype(np.int64)
        seen[members] = True
        f = fiedler_vector(mat, members, seed=seed)
        # deterministic sign: lower-valence end first
        asc = members[np.lexsort((members, f))]
        desc = members[np.lexsort((members, -f))]
        pick = asc if valence[asc[0]] <= valence[desc[0]] else desc
        parts.append(pick)
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
