"""Structural validation of CSR matrices and permutations.

RCM requires a structurally symmetric pattern (undirected graph).  These
checks are used by the public API to fail fast with clear messages, and by
the test-suite as reusable assertions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "validate_csr",
    "is_structurally_symmetric",
    "assert_permutation",
    "has_duplicates",
]


def has_duplicates(mat: CSRMatrix) -> bool:
    """True when any row stores the same column more than once."""
    if mat.nnz < 2:
        return False
    row_of = np.repeat(np.arange(mat.n, dtype=np.int64), np.diff(mat.indptr))
    order = np.lexsort((mat.indices, row_of))
    r = row_of[order]
    c = mat.indices[order]
    return bool(np.any((r[1:] == r[:-1]) & (c[1:] == c[:-1])))


def is_structurally_symmetric(mat: CSRMatrix) -> bool:
    """True when the pattern equals its transpose."""
    t = mat.transpose().sort_indices()
    m = mat.sort_indices()
    return (
        np.array_equal(m.indptr, t.indptr)
        and np.array_equal(m.indices, t.indices)
    )


def validate_csr(
    mat: CSRMatrix,
    *,
    require_symmetric: bool = False,
    require_sorted: bool = True,
) -> None:
    """Raise ``ValueError`` when the matrix violates structural requirements.

    Construction of :class:`CSRMatrix` already checks shape consistency;
    this adds duplicate, sortedness and symmetry checks used at the RCM API
    boundary.
    """
    if has_duplicates(mat):
        raise ValueError("CSR contains duplicate entries; rebuild via coo_to_csr")
    if require_sorted and not mat.has_sorted_indices():
        raise ValueError(
            "CSR indices must be sorted within each row; call sort_indices()"
        )
    if require_symmetric and not is_structurally_symmetric(mat):
        raise ValueError(
            "matrix pattern is not symmetric; call symmetrize() before RCM"
        )


def assert_permutation(perm: np.ndarray, n: Optional[int] = None) -> None:
    """Raise ``AssertionError`` unless ``perm`` is a bijection on [0, n)."""
    perm = np.asarray(perm)
    if n is None:
        n = perm.size
    assert perm.size == n, f"permutation length {perm.size} != {n}"
    seen = np.zeros(n, dtype=bool)
    assert perm.min() >= 0 and perm.max() < n, "permutation value out of range"
    seen[perm] = True
    assert seen.all(), "permutation is not a bijection"
