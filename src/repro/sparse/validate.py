"""Structural validation of CSR matrices and permutations.

RCM requires a structurally symmetric pattern (undirected graph).  These
checks are used by the public API to fail fast with clear messages, and by
the test-suite as reusable assertions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "validate_csr",
    "is_structurally_symmetric",
    "assert_permutation",
    "has_duplicates",
    "check_batch",
]


def has_duplicates(mat: CSRMatrix) -> bool:
    """True when any row stores the same column more than once."""
    if mat.nnz < 2:
        return False
    row_of = np.repeat(np.arange(mat.n, dtype=np.int64), np.diff(mat.indptr))
    order = np.lexsort((mat.indices, row_of))
    r = row_of[order]
    c = mat.indices[order]
    return bool(np.any((r[1:] == r[:-1]) & (c[1:] == c[:-1])))


def is_structurally_symmetric(mat: CSRMatrix) -> bool:
    """True when the pattern equals its transpose."""
    t = mat.transpose().sort_indices()
    m = mat.sort_indices()
    return (
        np.array_equal(m.indptr, t.indptr)
        and np.array_equal(m.indices, t.indices)
    )


def check_batch(mats) -> Optional[np.ndarray]:
    """One vectorized validity pass over a whole batch of patterns.

    Concatenates the batch into its block-diagonal union and checks — in a
    fixed number of NumPy passes, independent of ``len(mats)`` — exactly
    what the per-matrix path checks: indices sorted within rows, no
    duplicate entries, structural symmetry.  A block-diagonal pattern is
    symmetric iff every block is, so a single transpose comparison covers
    the batch; the same pass yields each matrix's initial bandwidth
    (``max |i - j|``, offsets cancel within a block).

    Returns the per-matrix initial bandwidths on success, or ``None`` when
    any matrix fails any check — callers rerun the per-matrix checks to
    raise the precise error for the offending matrix.
    """
    k = len(mats)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    ns = np.fromiter((m.n for m in mats), dtype=np.int64, count=k)
    nnzs = np.fromiter((m.nnz for m in mats), dtype=np.int64, count=k)
    node_off = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(ns, out=node_off[1:])
    nnz_off = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(nnzs, out=nnz_off[1:])
    total_n = int(node_off[-1])
    if int(nnz_off[-1]) == 0:
        return np.zeros(k, dtype=np.int64)

    cols = np.concatenate(
        [m.indices + node_off[i] for i, m in enumerate(mats)]
    )
    degrees = np.concatenate([np.diff(m.indptr) for m in mats])
    rows = np.repeat(np.arange(total_n, dtype=np.int64), degrees)

    # sortedness + duplicates: within a (globally offset) row, consecutive
    # columns must be strictly increasing
    same_row = rows[1:] == rows[:-1]
    if np.any(same_row & (np.diff(cols) <= 0)):
        return None

    # symmetry: the block-diagonal union equals its transpose.  The stable
    # argsort groups by column with rows ascending inside each group, so
    # the transpose comes out row-sorted and compares directly.
    order = np.argsort(cols, kind="stable")
    t_counts = np.bincount(cols, minlength=total_n)
    if not (
        np.array_equal(t_counts, np.bincount(rows, minlength=total_n))
        and np.array_equal(rows[order], cols)
    ):
        return None

    widths = np.abs(rows - cols)
    bws = np.zeros(k, dtype=np.int64)
    nonempty = nnzs > 0
    if np.any(nonempty):
        bws[nonempty] = np.maximum.reduceat(widths, nnz_off[:-1][nonempty])
    return bws


def validate_csr(
    mat: CSRMatrix,
    *,
    require_symmetric: bool = False,
    require_sorted: bool = True,
) -> None:
    """Raise ``ValueError`` when the matrix violates structural requirements.

    Construction of :class:`CSRMatrix` already checks shape consistency;
    this adds duplicate, sortedness and symmetry checks used at the RCM API
    boundary.
    """
    if has_duplicates(mat):
        raise ValueError("CSR contains duplicate entries; rebuild via coo_to_csr")
    if require_sorted and not mat.has_sorted_indices():
        raise ValueError(
            "CSR indices must be sorted within each row; call sort_indices()"
        )
    if require_symmetric and not is_structurally_symmetric(mat):
        raise ValueError(
            "matrix pattern is not symmetric; call symmetrize() before RCM"
        )


def assert_permutation(perm: np.ndarray, n: Optional[int] = None) -> None:
    """Raise ``AssertionError`` unless ``perm`` is a bijection on [0, n)."""
    perm = np.asarray(perm)
    if n is None:
        n = perm.size
    assert perm.size == n, f"permutation length {perm.size} != {n}"
    seen = np.zeros(n, dtype=bool)
    assert perm.min() >= 0 and perm.max() < n, "permutation value out of range"
    seen[perm] = True
    assert seen.all(), "permutation is not a bijection"
