"""Bandwidth and envelope metrics.

These are the quantities RCM tries to reduce.  The paper's Table I reports
the *initial* and *reordered* bandwidth per matrix; the examples additionally
use envelope size and wavefront statistics, the classical quality measures
for profile-reducing orderings (Sloan, GPS, RCM).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "bandwidth",
    "row_bandwidths",
    "envelope_size",
    "profile",
    "max_wavefront",
    "rms_wavefront",
    "bandwidth_after",
    "envelope_after",
]


def _row_of(mat: CSRMatrix) -> np.ndarray:
    return np.repeat(np.arange(mat.n, dtype=np.int64), np.diff(mat.indptr))


def bandwidth(mat: CSRMatrix) -> int:
    """Maximum distance of any stored entry from the diagonal.

    ``max |i - j|`` over stored entries ``(i, j)``; 0 for diagonal or empty
    matrices.
    """
    if mat.nnz == 0:
        return 0
    return int(np.max(np.abs(_row_of(mat) - mat.indices)))


def row_bandwidths(mat: CSRMatrix) -> np.ndarray:
    """Per-row ``max(i - min_col(i), 0)`` — the lower-profile widths.

    Rows with no entry left of the diagonal contribute 0.
    """
    out = np.zeros(mat.n, dtype=np.int64)
    row_of = _row_of(mat)
    width = row_of - mat.indices
    np.maximum.at(out, row_of, np.maximum(width, 0))
    return out


def envelope_size(mat: CSRMatrix) -> int:
    """Size of the (lower) envelope: ``sum_i (i - min_j(i))`` over rows with
    at least one sub-diagonal entry.

    Fill-in of an envelope-based Cholesky factorization is bounded by this
    quantity, which is why RCM matters for direct solvers.
    """
    return int(row_bandwidths(mat).sum())


def profile(mat: CSRMatrix) -> int:
    """Envelope size plus the diagonal (the classical 'profile')."""
    return envelope_size(mat) + mat.n


def _wavefront_sizes(mat: CSRMatrix) -> np.ndarray:
    """Wavefront size per elimination step.

    The wavefront at step ``i`` is the set of rows ``k >= i`` having an entry
    in columns ``<= i`` (including row ``i`` itself).  Computed in O(n + nnz)
    with a sweep over first-column appearances.
    """
    n = mat.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    first_col = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    row_of = _row_of(mat)
    np.minimum.at(first_col, row_of, mat.indices)
    empty = first_col == np.iinfo(np.int64).max
    first_col[empty] = np.arange(n)[empty]
    first_col = np.minimum(first_col, np.arange(n))
    # row k is active during steps [first_col[k], k]
    delta = np.zeros(n + 1, dtype=np.int64)
    np.add.at(delta, first_col, 1)
    ends = np.arange(n) + 1
    np.add.at(delta, ends, -1)
    return np.cumsum(delta[:-1])


def max_wavefront(mat: CSRMatrix) -> int:
    """Largest wavefront over all elimination steps."""
    sizes = _wavefront_sizes(mat)
    return int(sizes.max()) if sizes.size else 0


def rms_wavefront(mat: CSRMatrix) -> float:
    """Root-mean-square wavefront (Sloan's quality measure)."""
    sizes = _wavefront_sizes(mat)
    if sizes.size == 0:
        return 0.0
    return float(math.sqrt(np.mean(sizes.astype(np.float64) ** 2)))


def bandwidth_after(mat: CSRMatrix, perm: np.ndarray) -> int:
    """Bandwidth of ``P A P^T`` without materializing the permuted matrix."""
    perm = np.asarray(perm, dtype=np.int64)
    if perm.size != mat.n:
        raise ValueError("permutation length must equal n")
    inv = np.empty(mat.n, dtype=np.int64)
    inv[perm] = np.arange(mat.n, dtype=np.int64)
    if mat.nnz == 0:
        return 0
    return int(np.max(np.abs(inv[_row_of(mat)] - inv[mat.indices])))


def envelope_after(mat: CSRMatrix, perm: np.ndarray) -> int:
    """Envelope size of ``P A P^T`` without materializing the permuted
    matrix — the O(nnz) analogue of :func:`bandwidth_after`."""
    perm = np.asarray(perm, dtype=np.int64)
    if perm.size != mat.n:
        raise ValueError("permutation length must equal n")
    if mat.nnz == 0:
        return 0
    inv = np.empty(mat.n, dtype=np.int64)
    inv[perm] = np.arange(mat.n, dtype=np.int64)
    new_row = inv[_row_of(mat)]
    width = np.maximum(new_row - inv[mat.indices], 0)
    out = np.zeros(mat.n, dtype=np.int64)
    np.maximum.at(out, new_row, width)
    return int(out.sum())
