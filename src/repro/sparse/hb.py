"""Harwell-Boeing (HB) matrix file reader.

The other classical exchange format of the SuiteSparse collection (the HSL
heritage the paper's baselines come from).  An HB file stores a CSC matrix
in fixed-width Fortran fields described by format strings in the header::

    line 1: TITLE (72) KEY (8)
    line 2: TOTCRD PTRCRD INDCRD VALCRD RHSCRD           (5 × I14)
    line 3: MXTYPE (3) NROW NCOL NNZERO NELTVL           (4 × I14)
    line 4: PTRFMT INDFMT VALFMT RHSFMT                  (4 × A16/A20)
    [line 5: RHS descriptor — skipped]

``MXTYPE`` is three letters: value type (R/C/P = real/complex/pattern),
structure (S/U/H/Z = symmetric/unsymmetric/hermitian/skew) and A for
assembled.  Symmetric storage is expanded; complex values keep their real
part (consistent with :mod:`repro.sparse.io`).

Only the Fortran edit descriptors that occur in HB practice are parsed:
``(nIw)``, ``(nFw.d)``, ``(nEw.d)``, ``(nDw.d)`` and multi-group forms like
``(1P,3E25.16)``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.sparse.csr import CSRMatrix, coo_to_csr

__all__ = ["read_harwell_boeing"]

PathLike = Union[str, Path]

_FMT_RE = re.compile(
    r"""\(\s*
        (?:\d+\s*P\s*,?\s*)?          # optional scale factor, e.g. 1P
        (?P<count>\d+)\s*
        (?P<kind>[IFED])\s*
        (?P<width>\d+)
        (?:\.\d+)?                    # optional decimals
        \s*\)""",
    re.IGNORECASE | re.VERBOSE,
)


def _parse_format(fmt: str) -> Tuple[int, int, str]:
    """(items per line, field width, kind) from a Fortran edit descriptor."""
    m = _FMT_RE.search(fmt)
    if not m:
        raise ValueError(f"unsupported Fortran format {fmt!r}")
    return int(m.group("count")), int(m.group("width")), m.group("kind").upper()


def _read_fixed(
    lines: List[str], start: int, n_lines: int, n_items: int, fmt: str
) -> Tuple[np.ndarray, int]:
    """Read ``n_items`` fixed-width fields spanning ``n_lines`` lines."""
    per_line, width, kind = _parse_format(fmt)
    out: List[str] = []
    for k in range(n_lines):
        line = lines[start + k].rstrip("\n")
        for j in range(per_line):
            if len(out) >= n_items:
                break
            field = line[j * width : (j + 1) * width].strip()
            if field:
                out.append(field)
    if len(out) != n_items:
        raise ValueError(
            f"expected {n_items} fields, found {len(out)} (format {fmt!r})"
        )
    if kind == "I":
        return np.array([int(x) for x in out], dtype=np.int64), start + n_lines
    # Fortran D exponents -> E
    return (
        np.array([float(x.replace("D", "E").replace("d", "e")) for x in out]),
        start + n_lines,
    )


def read_harwell_boeing(path: PathLike) -> CSRMatrix:
    """Read a square assembled Harwell-Boeing matrix as :class:`CSRMatrix`.

    Pattern files yield a pattern-only matrix; symmetric/hermitian/skew
    storage is expanded to the full pattern.
    """
    lines = Path(path).read_text().splitlines()
    if len(lines) < 4:
        raise ValueError("truncated Harwell-Boeing file")

    card_counts = lines[1].split()
    if len(card_counts) < 4:
        raise ValueError("malformed HB card-count line")
    ptrcrd, indcrd, valcrd = (int(x) for x in card_counts[1:4])

    mxtype = lines[2][:3].strip().upper()
    if len(mxtype) != 3:
        raise ValueError(f"malformed MXTYPE {mxtype!r}")
    value_kind, structure, assembled = mxtype
    if assembled != "A":
        raise ValueError("only assembled HB matrices are supported")
    dims = lines[2][3:].split()
    nrow, ncol, nnzero = (int(x) for x in dims[:3])
    if nrow != ncol:
        raise ValueError("only square matrices are supported")

    fmt_line = lines[3]
    ptrfmt = fmt_line[:16]
    indfmt = fmt_line[16:32]
    valfmt = fmt_line[32:52]

    rhscrd = int(card_counts[4]) if len(card_counts) > 4 else 0
    pos = 4 + (1 if rhscrd > 0 else 0)

    colptr, pos = _read_fixed(lines, pos, ptrcrd, ncol + 1, ptrfmt)
    rowind, pos = _read_fixed(lines, pos, indcrd, nnzero, indfmt)
    values: Optional[np.ndarray] = None
    if value_kind != "P" and valcrd > 0:
        n_vals = nnzero * (2 if value_kind == "C" else 1)
        raw, pos = _read_fixed(lines, pos, valcrd, n_vals, valfmt)
        values = raw[::2] if value_kind == "C" else raw  # real part

    # CSC (1-based) -> COO
    colptr = colptr - 1
    rowind = rowind - 1
    cols = np.repeat(np.arange(ncol, dtype=np.int64), np.diff(colptr))
    rows = rowind.astype(np.int64)

    if structure in ("S", "H", "Z"):
        off = rows != cols
        extra_r, extra_c = cols[off], rows[off]
        rows = np.concatenate([rows, extra_r])
        cols = np.concatenate([cols, extra_c])
        if values is not None:
            mirrored = values[off]
            if structure == "Z":
                mirrored = -mirrored
            values = np.concatenate([values, mirrored])

    return coo_to_csr(nrow, rows, cols, values)
