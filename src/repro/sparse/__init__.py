"""Sparse-matrix substrate: CSR storage, graph view, bandwidth metrics, IO.

This subpackage is the foundation every RCM variant builds on.  Matrices are
stored in compressed sparse row (CSR) form — exactly the representation the
paper assumes ("an offset array pointing to the start of each row and an
index array capturing the destination node of each adjacency").
"""

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.sparse.bandwidth import (
    bandwidth,
    envelope_size,
    profile,
    rms_wavefront,
    max_wavefront,
)
from repro.sparse.graph import (
    bfs_levels,
    bfs_order,
    connected_components,
    component_of,
    front_statistics,
    eccentricity_lower_bound,
)
from repro.sparse.io import (
    read_matrix_market,
    write_matrix_market,
    save_npz,
    load_npz,
)
from repro.sparse.hb import read_harwell_boeing
from repro.sparse.spy import spy, side_by_side
from repro.sparse.validate import validate_csr, is_structurally_symmetric

__all__ = [
    "CSRMatrix",
    "coo_to_csr",
    "bandwidth",
    "envelope_size",
    "profile",
    "rms_wavefront",
    "max_wavefront",
    "bfs_levels",
    "bfs_order",
    "connected_components",
    "component_of",
    "front_statistics",
    "eccentricity_lower_bound",
    "read_matrix_market",
    "write_matrix_market",
    "save_npz",
    "load_npz",
    "read_harwell_boeing",
    "spy",
    "side_by_side",
    "validate_csr",
    "is_structurally_symmetric",
]
