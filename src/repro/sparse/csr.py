"""Compressed Sparse Row matrix structure.

The RCM algorithms in :mod:`repro.core` only need the *pattern* of a square
matrix interpreted as an undirected graph: ``indptr`` (row offsets) and
``indices`` (column indices / adjacency lists).  Values are carried along so
that examples can permute real systems, but every algorithm here is purely
structural.

All arrays are NumPy arrays.  ``indices`` within a row are kept sorted
ascending — serial RCM's tie-breaking (stable sort on valence) then becomes a
deterministic function of the matrix, which is what makes "parallel output ==
serial output" a testable exact invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["CSRMatrix", "coo_to_csr"]

ArrayLike = Union[Sequence[int], np.ndarray]


def _as_index_array(arr: ArrayLike, name: str) -> np.ndarray:
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {out.shape}")
    if out.size == 0:
        return np.zeros(0, dtype=np.int64)
    if not np.issubdtype(out.dtype, np.integer):
        raise TypeError(f"{name} must have an integer dtype, got {out.dtype}")
    return out.astype(np.int64, copy=False)


def coo_to_csr(
    n: int,
    rows: ArrayLike,
    cols: ArrayLike,
    data: Optional[ArrayLike] = None,
    *,
    sum_duplicates: bool = True,
) -> "CSRMatrix":
    """Build a :class:`CSRMatrix` from coordinate (triplet) form.

    Duplicate entries are merged (values summed when present).  Rows and
    column indices must lie in ``[0, n)``.
    """
    rows = _as_index_array(rows, "rows")
    cols = _as_index_array(cols, "cols")
    if rows.shape != cols.shape:
        raise ValueError("rows and cols must have the same length")
    if rows.size and (rows.min() < 0 or rows.max() >= n):
        raise ValueError("row index out of range")
    if cols.size and (cols.min() < 0 or cols.max() >= n):
        raise ValueError("column index out of range")

    values = None
    if data is not None:
        values = np.asarray(data, dtype=np.float64)
        if values.shape != rows.shape:
            raise ValueError("data must have the same length as rows/cols")

    # Lexicographic sort by (row, col); then collapse duplicates.
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    if values is not None:
        values = values[order]

    if sum_duplicates and rows.size:
        keep = np.empty(rows.size, dtype=bool)
        keep[0] = True
        keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        if values is not None and not keep.all():
            group = np.cumsum(keep) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(summed, group, values)
            values = summed
        rows = rows[keep]
        cols = cols[keep]
        if values is not None and values.size != rows.size:
            values = values[: rows.size]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(indptr=indptr, indices=cols.copy(), data=values, n=n)


@dataclass
class CSRMatrix:
    """A square sparse matrix in CSR format.

    Parameters
    ----------
    indptr:
        ``(n + 1,)`` row offsets, ``indptr[0] == 0``,
        ``indptr[-1] == nnz``.
    indices:
        ``(nnz,)`` column indices; within each row sorted ascending.
    data:
        optional ``(nnz,)`` values (float64); ``None`` means pattern-only.
    n:
        number of rows == number of columns (set automatically when omitted).
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: Optional[np.ndarray] = None
    n: int = field(default=-1)

    def __post_init__(self) -> None:
        self.indptr = _as_index_array(self.indptr, "indptr")
        self.indices = _as_index_array(self.indices, "indices")
        if self.n < 0:
            self.n = int(self.indptr.size - 1)
        if self.indptr.size != self.n + 1:
            raise ValueError(
                f"indptr has length {self.indptr.size}, expected n+1={self.n + 1}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if int(self.indptr[-1]) != self.indices.size:
            raise ValueError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise ValueError("column index out of range")
        if self.data is not None:
            self.data = np.asarray(self.data, dtype=np.float64)
            if self.data.size != self.indices.size:
                raise ValueError("data must have nnz entries")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    def row(self, i: int) -> np.ndarray:
        """Column indices of row ``i`` (a view, do not mutate)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def row_values(self, i: int) -> Optional[np.ndarray]:
        """Values of row ``i`` (``None`` for pattern-only matrices)."""
        if self.data is None:
            return None
        return self.data[self.indptr[i] : self.indptr[i + 1]]

    def degrees(self) -> np.ndarray:
        """Number of stored entries per row (the node *valence* incl. any
        self loop entry)."""
        return np.diff(self.indptr)

    def valences(self) -> np.ndarray:
        """Paper's valence: ``r[n+1] - r[n]``, i.e. row entry count.

        Alias of :meth:`degrees`; kept under the paper's terminology so the
        algorithm code reads like the pseudo code.
        """
        return self.degrees()

    def copy(self) -> "CSRMatrix":
        """Deep copy (arrays owned by the new instance)."""
        return CSRMatrix(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            data=None if self.data is None else self.data.copy(),
            n=self.n,
        )

    # ------------------------------------------------------------------
    # canonicalization
    # ------------------------------------------------------------------
    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with indices within each row sorted ascending.

        One global stable lexsort on (row id, column) reorders every row
        segment at once — no per-row Python loop.
        """
        row_of = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        order = np.lexsort((self.indices, row_of))
        indices = self.indices[order]
        data = None if self.data is None else self.data[order]
        return CSRMatrix(indptr=self.indptr.copy(), indices=indices, data=data, n=self.n)

    def has_sorted_indices(self) -> bool:
        """True when every row's indices are strictly ascending."""
        if self.nnz == 0:
            return True
        row_of = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        same_row = row_of[1:] == row_of[:-1]
        return bool(np.all(self.indices[1:][same_row] > self.indices[:-1][same_row]))

    def strip_diagonal(self) -> "CSRMatrix":
        """Return a copy with diagonal entries removed.

        RCM treats the matrix as a graph; self loops never affect the BFS but
        *do* affect the stored valence, so benchmarks strip them to match the
        conventional "degree" notion when requested.
        """
        row_of = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        keep = self.indices != row_of
        indices = self.indices[keep]
        data = None if self.data is None else self.data[keep]
        counts = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(counts, row_of[keep] + 1, 1)
        indptr = np.cumsum(counts)
        return CSRMatrix(indptr=indptr, indices=indices, data=data, n=self.n)

    def symmetrize(self) -> "CSRMatrix":
        """Return the pattern-symmetric closure ``A | A^T``.

        Values, when present, become ``(A + A^T) / 2`` on entries present in
        both and the one-sided value otherwise — adequate for the structural
        experiments in this repository.
        """
        t = self.transpose()
        n = self.n
        rows_a = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        rows_b = np.repeat(np.arange(n, dtype=np.int64), np.diff(t.indptr))
        rows = np.concatenate([rows_a, rows_b])
        cols = np.concatenate([self.indices, t.indices])
        if self.data is not None:
            data = np.concatenate([self.data * 0.5, t.data * 0.5])
            merged = coo_to_csr(n, rows, cols, data)
            # one-sided entries got halved; fix by comparing with max-merge
            ones = coo_to_csr(
                n, rows, cols, np.ones(rows.size, dtype=np.float64)
            )
            scale = np.where(ones.data > 1.5, 1.0, 2.0)
            merged.data *= scale
            return merged
        return coo_to_csr(n, rows, cols)

    def transpose(self) -> "CSRMatrix":
        """Return ``A^T`` (CSC of A reinterpreted as CSR)."""
        n = self.n
        counts = np.zeros(n + 1, dtype=np.int64)
        np.add.at(counts, self.indices + 1, 1)
        indptr = np.cumsum(counts)
        order = np.argsort(self.indices, kind="stable")
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        indices = row_of[order]
        data = None if self.data is None else self.data[order]
        return CSRMatrix(indptr=indptr, indices=indices, data=data, n=n)

    # ------------------------------------------------------------------
    # permutation
    # ------------------------------------------------------------------
    def permute_symmetric(self, perm: np.ndarray) -> "CSRMatrix":
        """Return ``P A P^T`` where ``perm[k]`` is the *old* index placed at
        new position ``k`` (scipy convention for ``reverse_cuthill_mckee``).

        The inverse mapping ``inv[old] = new`` relabels every row and column.
        """
        perm = _as_index_array(perm, "perm")
        if perm.size != self.n:
            raise ValueError("permutation length must equal n")
        inv = np.empty(self.n, dtype=np.int64)
        inv[perm] = np.arange(self.n, dtype=np.int64)

        new_rows = inv[
            np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        ]
        new_cols = inv[self.indices]
        return coo_to_csr(self.n, new_rows, new_cols, self.data, sum_duplicates=False)

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (ones for pattern-only)."""
        import scipy.sparse as sp

        data = self.data
        if data is None:
            data = np.ones(self.nnz, dtype=np.float64)
        return sp.csr_matrix((data, self.indices, self.indptr), shape=self.shape)

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any scipy sparse matrix (converted to CSR)."""
        csr = mat.tocsr()
        if csr.shape[0] != csr.shape[1]:
            raise ValueError("matrix must be square")
        csr.sort_indices()
        return cls(
            indptr=np.asarray(csr.indptr, dtype=np.int64),
            indices=np.asarray(csr.indices, dtype=np.int64),
            data=np.asarray(csr.data, dtype=np.float64),
            n=csr.shape[0],
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError("dense matrix must be square 2-D")
        rows, cols = np.nonzero(dense)
        return coo_to_csr(dense.shape[0], rows, cols, dense[rows, cols])

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (ones for pattern-only entries)."""
        out = np.zeros(self.shape, dtype=np.float64)
        row_of = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        vals = self.data if self.data is not None else np.ones(self.nnz)
        out[row_of, self.indices] = vals
        return out

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Tuple[int, int]], *, symmetric: bool = True
    ) -> "CSRMatrix":
        """Build a pattern matrix from an edge list (adds both directions
        when ``symmetric``; self loops are kept as given)."""
        edge_arr = np.asarray(list(edges), dtype=np.int64)
        if edge_arr.size == 0:
            return cls(
                indptr=np.zeros(n + 1, dtype=np.int64),
                indices=np.zeros(0, dtype=np.int64),
                n=n,
            )
        rows = edge_arr[:, 0]
        cols = edge_arr[:, 1]
        if symmetric:
            rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        return coo_to_csr(n, rows, cols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "pattern" if self.data is None else "valued"
        return f"CSRMatrix(n={self.n}, nnz={self.nnz}, {kind})"
