"""ASCII spy plots: eyeball a sparsity pattern in the terminal.

``spy(mat)`` bins the pattern into a character grid (density shading), the
quickest way to *see* what RCM did — scattered cloud in, tight band out.
Used by the examples and the CLI's ``info`` command.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["spy", "side_by_side"]

_SHADES = " .:*#@"


def spy(mat: CSRMatrix, *, size: int = 40, title: str = "") -> str:
    """Render the pattern as a ``size × size`` density grid."""
    n = max(mat.n, 1)
    grid = np.zeros((size, size), dtype=np.int64)
    if mat.nnz:
        rows = np.repeat(np.arange(mat.n, dtype=np.int64), np.diff(mat.indptr))
        r = (rows * size) // n
        c = (mat.indices * size) // n
        np.add.at(grid, (r, c), 1)
    peak = max(int(grid.max()), 1)
    lines = []
    if title:
        lines.append(title)
    border = "+" + "-" * size + "+"
    lines.append(border)
    for row in grid:
        chars = [
            _SHADES[min(int(v * (len(_SHADES) - 1) / peak + (v > 0)), len(_SHADES) - 1)]
            for v in row
        ]
        lines.append("|" + "".join(chars) + "|")
    lines.append(border)
    return "\n".join(lines)


def side_by_side(
    left: CSRMatrix,
    right: CSRMatrix,
    *,
    size: int = 32,
    titles: Optional[tuple] = None,
) -> str:
    """Two spy plots next to each other (before/after comparisons)."""
    lt, rt = titles or ("before", "after")
    a = spy(left, size=size, title=lt).splitlines()
    b = spy(right, size=size, title=rt).splitlines()
    while len(a) < len(b):
        a.append("")
    while len(b) < len(a):
        b.append("")
    w = max(len(x) for x in a)
    return "\n".join(f"{x.ljust(w)}   {y}" for x, y in zip(a, b))
