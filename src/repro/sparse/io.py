"""Matrix IO: MatrixMarket coordinate files and fast ``.npz`` round trips.

The paper's test set comes from the SuiteSparse collection, distributed as
MatrixMarket ``.mtx``.  This reader supports the subset needed for symmetric
pattern/real matrices (general, symmetric, pattern, real, integer) so users
can feed real SuiteSparse downloads into the library; the benchmarks
themselves use the synthetic analogues in :mod:`repro.matrices`.
"""

from __future__ import annotations

import gzip
import io as _io
from pathlib import Path
from typing import Union

import numpy as np

from repro.sparse.csr import CSRMatrix, coo_to_csr

__all__ = ["read_matrix_market", "write_matrix_market", "save_npz", "load_npz"]

PathLike = Union[str, Path]


def _open_text(path: PathLike):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt")
    return open(path, "rt")


def read_matrix_market(path: PathLike) -> CSRMatrix:
    """Read a square MatrixMarket coordinate matrix.

    Symmetric/skew/hermitian storage is expanded to the full pattern.
    Complex values are read as their real part; ``pattern`` files produce a
    pattern-only :class:`CSRMatrix`.
    """
    with _open_text(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file")
        parts = header.strip().split()
        if len(parts) < 5:
            raise ValueError(f"malformed MatrixMarket header: {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError("only coordinate matrices are supported")
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("real", "integer", "pattern", "complex"):
            raise ValueError(f"unsupported field type {field!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nr, nc, nnz = (int(tok) for tok in line.split())
        if nr != nc:
            raise ValueError("only square matrices are supported")

        body = fh.read()

    table = np.loadtxt(_io.StringIO(body), ndmin=2)
    if table.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, found {table.shape[0]}")
    rows = table[:, 0].astype(np.int64) - 1
    cols = table[:, 1].astype(np.int64) - 1
    data = None
    if field in ("real", "integer") and table.shape[1] >= 3:
        data = table[:, 2].astype(np.float64)
    elif field == "complex" and table.shape[1] >= 3:
        data = table[:, 2].astype(np.float64)

    if symmetry in ("symmetric", "hermitian", "skew-symmetric"):
        off = rows != cols
        extra_r, extra_c = cols[off], rows[off]
        rows = np.concatenate([rows, extra_r])
        cols = np.concatenate([cols, extra_c])
        if data is not None:
            mirrored = data[off]
            if symmetry == "skew-symmetric":
                mirrored = -mirrored
            data = np.concatenate([data, mirrored])

    return coo_to_csr(nr, rows, cols, data)


def write_matrix_market(mat: CSRMatrix, path: PathLike) -> None:
    """Write a :class:`CSRMatrix` as a general coordinate MatrixMarket file."""
    path = Path(path)
    field = "pattern" if mat.data is None else "real"
    row_of = np.repeat(np.arange(mat.n, dtype=np.int64), np.diff(mat.indptr))
    with open(path, "wt") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        fh.write(f"{mat.n} {mat.n} {mat.nnz}\n")
        if mat.data is None:
            for r, c in zip(row_of, mat.indices):
                fh.write(f"{r + 1} {c + 1}\n")
        else:
            for r, c, v in zip(row_of, mat.indices, mat.data):
                fh.write(f"{r + 1} {c + 1} {v:.17g}\n")


def save_npz(mat: CSRMatrix, path: PathLike) -> None:
    """Binary round trip; much faster than MatrixMarket for large matrices."""
    arrays = {"indptr": mat.indptr, "indices": mat.indices, "n": np.int64(mat.n)}
    if mat.data is not None:
        arrays["data"] = mat.data
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: PathLike) -> CSRMatrix:
    """Load a matrix previously written by :func:`save_npz`."""
    with np.load(Path(path)) as npz:
        data = npz["data"] if "data" in npz.files else None
        return CSRMatrix(
            indptr=npz["indptr"], indices=npz["indices"], data=data, n=int(npz["n"])
        )
