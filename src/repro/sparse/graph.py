"""Graph-view helpers: BFS, levels, components, BFS-front statistics.

RCM is a BFS with per-parent sorting, so every parallelization in the paper
is reasoned about through the BFS *level structure* rooted at the start node.
Table I reports the **average BFS front width** per matrix — the paper's best
predictor of available parallelism — which :func:`front_statistics` computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "bfs_levels",
    "bfs_order",
    "level_structure",
    "connected_components",
    "component_of",
    "front_statistics",
    "FrontStats",
    "eccentricity_lower_bound",
]


def bfs_levels(mat: CSRMatrix, start: int) -> np.ndarray:
    """BFS level (hop distance) of every node from ``start``.

    Unreachable nodes get ``-1``.  Vectorized frontier expansion: each
    iteration gathers all neighbours of the current frontier at once.
    """
    n = mat.n
    if not 0 <= start < n:
        raise ValueError("start node out of range")
    levels = np.full(n, -1, dtype=np.int64)
    levels[start] = 0
    frontier = np.array([start], dtype=np.int64)
    depth = 0
    indptr, indices = mat.indptr, mat.indices
    while frontier.size:
        depth += 1
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        # gather neighbour lists of the whole frontier in one shot
        offsets = np.concatenate([[0], np.cumsum(ends - starts)])
        gathered = np.empty(total, dtype=np.int64)
        pos = np.arange(total, dtype=np.int64)
        seg = np.searchsorted(offsets, pos, side="right") - 1
        gathered = indices[starts[seg] + (pos - offsets[seg])]
        fresh = gathered[levels[gathered] < 0]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        levels[fresh] = depth
        frontier = fresh
    return levels


def bfs_order(mat: CSRMatrix, start: int) -> np.ndarray:
    """Plain FIFO BFS visitation order (no valence sorting) from ``start``.

    Children are visited in adjacency-list order.  Returns only reached
    nodes.  This is the "RCM with sorting disabled" the paper uses as its
    parallel pseudo-peripheral BFS.
    """
    n = mat.n
    indptr, indices = mat.indptr, mat.indices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    order[0] = start
    visited[start] = True
    head, tail = 0, 1
    while head < tail:
        p = order[head]
        head += 1
        for nb in indices[indptr[p] : indptr[p + 1]]:
            if not visited[nb]:
                visited[nb] = True
                order[tail] = nb
                tail += 1
    return order[:tail].copy()


def level_structure(mat: CSRMatrix, start: int) -> List[np.ndarray]:
    """Rooted level structure: list of node arrays, one per BFS level."""
    levels = bfs_levels(mat, start)
    depth = int(levels.max())
    if depth < 0:
        return []
    out: List[np.ndarray] = []
    for d in range(depth + 1):
        out.append(np.flatnonzero(levels == d).astype(np.int64))
    return out


def connected_components(mat: CSRMatrix) -> Tuple[int, np.ndarray]:
    """Connected components of the undirected graph view.

    Returns ``(count, labels)`` with labels in component-discovery order
    (component 0 contains node 0).  The matrix is assumed structurally
    symmetric; use :meth:`CSRMatrix.symmetrize` first otherwise.
    """
    n = mat.n
    labels = np.full(n, -1, dtype=np.int64)
    comp = 0
    for seed in range(n):
        if labels[seed] >= 0:
            continue
        # BFS flood fill from seed
        stack = [seed]
        labels[seed] = comp
        indptr, indices = mat.indptr, mat.indices
        while stack:
            p = stack.pop()
            for nb in indices[indptr[p] : indptr[p + 1]]:
                if labels[nb] < 0:
                    labels[nb] = comp
                    stack.append(int(nb))
        comp += 1
    return comp, labels


def component_of(mat: CSRMatrix, node: int) -> np.ndarray:
    """Sorted node ids of the component containing ``node``."""
    levels = bfs_levels(mat, node)
    return np.flatnonzero(levels >= 0).astype(np.int64)


@dataclass(frozen=True)
class FrontStats:
    """BFS front-width statistics from a given start node."""

    depth: int
    avg_front: float
    max_front: int
    reached: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FrontStats(depth={self.depth}, avg={self.avg_front:.1f}, "
            f"max={self.max_front}, reached={self.reached})"
        )


def front_statistics(mat: CSRMatrix, start: int) -> FrontStats:
    """Average/maximum BFS front width — the paper's parallelism predictor.

    The average front is ``reached_nodes / number_of_levels``; Table I
    reports this per matrix ("avg BFS front").
    """
    levels = bfs_levels(mat, start)
    reached = levels >= 0
    count = int(reached.sum())
    if count == 0:
        return FrontStats(depth=0, avg_front=0.0, max_front=0, reached=0)
    depth = int(levels.max())
    widths = np.bincount(levels[reached], minlength=depth + 1)
    return FrontStats(
        depth=depth,
        avg_front=float(count / (depth + 1)),
        max_front=int(widths.max()),
        reached=count,
    )


def eccentricity_lower_bound(mat: CSRMatrix, start: int) -> int:
    """Depth of the BFS tree from ``start`` — a lower bound on eccentricity,
    used by pseudo-peripheral node finding."""
    return int(bfs_levels(mat, start).max())
