"""Command-line interface.

::

    python -m repro info matrix.mtx            # stats + spy plot
    python -m repro reorder matrix.mtx -o out.mtx --method batch-cpu
    python -m repro generate ecology1 -o eco.npz
    python -m repro trace --matrix gupta3 --workers 8 -o trace.json
    python -m repro profile --matrix gupta3 --method threads -o prof
    python -m repro bench table1 --quick       # any experiment driver

Files: MatrixMarket (``.mtx``, ``.mtx.gz``) and the library's ``.npz``.

``trace`` visualizes the *simulated* machine; ``profile`` (and the
``--telemetry run.jsonl`` flag on ``reorder``/``bench``) records *real*
wall-clock telemetry — see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

# the one eager repro import: every --method choices list below comes from
# the backend registry, resolved at module import (single source of truth)
from repro.backends import capability_rows, capability_table, method_choices

__all__ = ["main"]


def _load(path: str):
    from repro.sparse.io import read_matrix_market, load_npz
    from repro.sparse.hb import read_harwell_boeing

    p = Path(path)
    if p.suffix == ".npz":
        return load_npz(p)
    if p.suffix in (".rb", ".hb", ".rua", ".rsa", ".psa", ".pua"):
        return read_harwell_boeing(p)
    return read_matrix_market(p)


def _save(mat, path: str) -> None:
    from repro.sparse.io import write_matrix_market, save_npz

    p = Path(path)
    if p.suffix == ".npz":
        save_npz(mat, p)
    else:
        write_matrix_market(mat, p)


def _get_input(args):
    """Matrix from a file argument or a named test-set analogue."""
    if getattr(args, "matrix_file", None):
        return _load(args.matrix_file)
    from repro.matrices import get_matrix

    return get_matrix(args.matrix)


def cmd_info(args) -> int:
    """``info``: print matrix statistics and a spy plot."""
    from repro.sparse.bandwidth import bandwidth, envelope_size
    from repro.sparse.graph import connected_components, front_statistics
    from repro.sparse.validate import is_structurally_symmetric
    from repro.sparse.spy import spy

    mat = _get_input(args)
    sym = is_structurally_symmetric(mat)
    print(f"n={mat.n}  nnz={mat.nnz}  symmetric={sym}")
    print(f"bandwidth={bandwidth(mat)}  envelope={envelope_size(mat)}")
    degs = mat.degrees()
    if mat.n:
        print(f"valence: min={degs.min()} max={degs.max()} avg={degs.mean():.1f}")
    count, _ = connected_components(mat if sym else mat.symmetrize())
    print(f"components={count}")
    if sym and mat.n:
        fs = front_statistics(mat, 0)
        print(f"BFS front (from node 0): avg={fs.avg_front:.1f} "
              f"max={fs.max_front} depth={fs.depth}")
    if not args.no_spy:
        print(spy(mat, size=min(48, max(mat.n, 4))))
    return 0


def cmd_reorder(args) -> int:
    """``reorder``: compute an ordering, apply it, optionally write outputs."""
    import json

    from repro import reorder, telemetry
    from repro.sparse.spy import side_by_side

    if getattr(args, "telemetry", None):
        telemetry.enable()
    mat = _get_input(args)
    start = args.start if args.start is not None else "min-valence"
    if args.peripheral:
        start = "peripheral"
    res = reorder(
        mat,
        algorithm=args.algorithm,
        method=args.method,
        start=start,
        n_workers=args.workers,
        symmetrize=args.symmetrize,
        transform=getattr(args, "transform", None),
    )
    reordered = (mat.symmetrize() if args.symmetrize else mat).permute_symmetric(
        res.permutation
    )
    # with --json, stdout carries only the JSON document (pipeable to jq);
    # status lines move to stderr
    status = sys.stderr if args.json else sys.stdout
    if args.json:
        # machine-readable: bandwidths, phase wall times and, for the
        # simulated methods, every RunStats counter (Fig. 3/6 semantics)
        print(json.dumps(res.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"method={res.method}  components={res.n_components}")
        if res.transform is not None:
            print(f"transform={res.transform}")
        print(f"bandwidth {res.initial_bandwidth} -> {res.reordered_bandwidth}")
    if args.spy:
        print(side_by_side(mat, reordered, size=32), file=status)
    if args.output:
        _save(reordered, args.output)
        print(f"wrote {args.output}", file=status)
    if args.perm_output:
        np.savetxt(args.perm_output, res.permutation, fmt="%d")
        print(f"wrote permutation to {args.perm_output}", file=status)
    if getattr(args, "telemetry", None):
        n = telemetry.get().write_jsonl(
            args.telemetry, meta={"command": "reorder", "method": args.method}
        )
        print(f"wrote {n} telemetry events to {args.telemetry}", file=status)
    return 0


def cmd_generate(args) -> int:
    """``generate``: write a named test-set analogue to a file."""
    from repro.matrices import get_matrix, matrix_names

    if args.list:
        for n in matrix_names():
            print(n)
        return 0
    mat = get_matrix(args.matrix)
    _save(mat, args.output)
    print(f"wrote {args.matrix}: n={mat.n} nnz={mat.nnz} -> {args.output}")
    return 0


def cmd_trace(args) -> int:
    """``trace``: run batch RCM with tracing; print Gantt, export JSON."""
    from repro.machine.costmodel import CPUCostModel
    from repro.machine.tracing import ascii_gantt, to_chrome_tracing
    from repro.bench.runner import pick_start
    from repro.core.state import make_state
    from repro.machine.engine import Engine
    from repro.core.batch import worker_loop
    from repro.core.batches import BatchConfig

    mat = _get_input(args)
    start, total = pick_start(mat)
    model = CPUCostModel()
    state = make_state(mat, start, n_workers=args.workers, total=total)
    engine = Engine(args.workers, state.stats, trace=True)
    cfg = BatchConfig()
    engine.run([worker_loop(state, cfg, model, engine) for _ in range(args.workers)])
    state.sync_queue_stats()
    print(ascii_gantt(engine.trace, width=args.width, n_workers=args.workers))
    print(f"\nmakespan: {engine.stats.makespan:.0f} cycles "
          f"({engine.stats.milliseconds(model.clock_ghz):.3f} simulated ms)")
    if args.output:
        to_chrome_tracing(engine.trace, args.output, clock_ghz=model.clock_ghz)
        print(f"wrote {args.output} (load in chrome://tracing)")
    return 0


def cmd_profile(args) -> int:
    """``profile``: run RCM with full telemetry; export JSONL + Chrome trace.

    Unlike ``trace`` (which renders the *simulated* machine), this records
    real wall-clock spans and counters: API phase breakdown, per-worker
    stage spans of the OS-thread backend, and speculation/queue counters
    with the same semantics as the simulator's ``RunStats``.
    """
    from repro import reorder, telemetry
    from repro.telemetry import profiler as profmod

    tel = telemetry.get()
    tel.reset()
    telemetry.enable()
    mat = _get_input(args)
    start = "peripheral" if args.peripheral else "min-valence"
    prof = profmod.start_profiler(hz=args.hz)
    try:
        res = reorder(
            mat, method=args.method, start=start, n_workers=args.workers
        )
    finally:
        profmod.stop_profiler()

    print(f"method={res.method}  n={mat.n}  nnz={mat.nnz}  "
          f"components={res.n_components}")
    print(f"bandwidth {res.initial_bandwidth} -> {res.reordered_bandwidth}")
    print("\nphase breakdown (wall):")
    for phase, ns in res.phase_ns.items():
        print(f"  {phase:<16s} {ns / 1e6:10.3f} ms")
    print(f"  {'total':<16s} {res.wall_ms:10.3f} ms")

    snap = tel.snapshot()
    if snap["counters"]:
        print("\ncounters:")
        for name, value in snap["counters"].items():
            print(f"  {name:<40s} {value}")

    records = tel.tracer.records()
    worker_spans = [r for r in records if r.worker is not None]
    if worker_spans:
        print()
        print(telemetry.spans_gantt(worker_spans, width=args.width))

    jsonl_path = f"{args.output}.jsonl"
    trace_path = f"{args.output}.trace.json"
    meta = {
        "command": "profile",
        "method": args.method,
        "matrix": args.matrix or args.matrix_file,
        "n": mat.n,
        "nnz": mat.nnz,
        "workers": args.workers,
        "phase_ns": res.phase_ns,
    }
    n = tel.write_jsonl(jsonl_path, meta=meta)
    tel.write_chrome_trace(trace_path)
    print(f"\nwrote {n} events to {jsonl_path}")
    print(f"wrote {trace_path} (load in Perfetto / chrome://tracing)")

    stats = prof.stats()
    print(f"\nprofiler: {stats['samples']} stack samples at "
          f"{prof.hz:g} Hz (self-overhead {stats['overhead_pct']:.2f}%)")
    report = telemetry.critical_path(records)
    if report is not None:
        print()
        print(telemetry.format_report(report))
    if args.flame:
        Path(args.flame).write_text(
            telemetry.profile_to_collapsed(prof.folded()))
        print(f"\nwrote collapsed stacks to {args.flame} "
              f"(flamegraph.pl / inferno ready)")
    if args.speedscope:
        import json

        Path(args.speedscope).write_text(json.dumps(
            telemetry.profile_to_speedscope(
                prof.folded(),
                name=f"repro profile {args.matrix or args.matrix_file}",
            )))
        print(f"wrote speedscope profile to {args.speedscope} "
              f"(open at https://www.speedscope.app)")
    return 0


def cmd_compare(args) -> int:
    """Compare ordering heuristics on one matrix."""
    import time

    from repro import reorder
    from repro.orderings.api import quality
    from repro.bench.report import render_table

    mat = _get_input(args)
    # (label, algorithm, extra facade kwargs)
    runs = [
        ("RCM", "rcm",
         {"start": "peripheral", "method": "batch-cpu",
          "n_workers": args.workers}),
        ("Sloan", "sloan", {}),
        ("GPS", "gps", {}),
        ("King", "king", {}),
        ("spectral", "spectral", {}),
    ]
    if args.mindeg:
        runs.append(("min-degree", "minimum-degree", {}))
    rows = []
    for label, algorithm, kwargs in runs:
        t0 = time.perf_counter()
        res = reorder(mat, algorithm=algorithm, **kwargs)
        dt = time.perf_counter() - t0
        # metrics only: the permutation is already computed, don't pay twice
        q = quality(mat, algorithm, permutation=res.permutation)
        rows.append([
            label, q.bandwidth, q.envelope,
            round(q.rms_wavefront, 1), round(dt, 3),
        ])
    print(render_table(
        ["heuristic", "bandwidth", "envelope", "rms wavefront", "seconds"],
        rows, title=f"ordering comparison (n={mat.n}, nnz={mat.nnz})",
    ))
    return 0


def _load_spec(spec: str):
    """A workload line: an existing matrix file path, else an analogue name."""
    if Path(spec).exists():
        return _load(spec)
    from repro.matrices import get_matrix

    return get_matrix(spec)


def cmd_serve(args) -> int:
    """``serve``: run a batch-file workload through the reordering service.

    The workload is a text file with one matrix spec per line (a matrix
    file path or a named test-set analogue; blank lines and ``#`` comments
    ignored), optionally cycled ``--repeat`` times — repeated patterns are
    served from the content-hash cache and concurrent duplicates coalesce
    onto one computation.  Prints per-request outcomes and the service
    counters; see ``docs/service.md``.

    SIGTERM/SIGINT trigger a graceful shutdown: the ``/statusz`` state
    flips to ``shutting-down``, result gathering stops, final telemetry is
    flushed, and the process exits ``128 + signum``.
    """
    import json
    import signal
    import threading
    import time

    from repro import telemetry
    from repro.service import ReorderService, ServiceConfig, ShardedService

    if getattr(args, "telemetry", None):
        telemetry.enable()
    if getattr(args, "listen", None) is not None:
        # a live endpoint implies recording: counters must move to scrape
        telemetry.enable()
    prof = None
    if getattr(args, "profile", False):
        # continuous sampling profiler: telemetry must record so samples
        # get span/phase/shard attribution; /debug/flame picks the
        # profiler up automatically when --listen is also given
        from repro.telemetry import profiler as profmod

        telemetry.enable()
        prof = profmod.start_profiler()
    if getattr(args, "flight", None):
        from repro.telemetry import flight

        flight.configure(args.flight)

    specs: List[str] = []
    if args.workload:
        for line in Path(args.workload).read_text().splitlines():
            line = line.split("#", 1)[0].strip()
            if line:
                specs.append(line)
    specs.extend(args.matrix or [])
    if not specs:
        print("serve: empty workload (no matrix specs)", file=sys.stderr)
        return 2
    specs = specs * max(args.repeat, 1)

    cfg = ServiceConfig(
        n_workers=args.workers,
        max_pending=args.max_pending,
        cache_capacity=args.capacity,
        disk_dir=args.cache_dir,
        request_timeout=args.timeout,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
    )
    rows = []
    server = None
    # graceful-shutdown plumbing: a signal flips the event (and the
    # /statusz state), the gather/linger loops observe it and unwind
    stop_event = threading.Event()
    caught: dict = {}

    def _on_signal(signum, frame):
        caught["signum"] = signum
        if server is not None:
            server.mark_shutdown()
        stop_event.set()

    old_handlers = {}
    if threading.current_thread() is threading.main_thread():
        # signal.signal only works from the main thread; in-process callers
        # (tests driving main() from a worker thread) just skip the hooks
        for s in (signal.SIGTERM, signal.SIGINT):
            old_handlers[s] = signal.signal(s, _on_signal)

    shards = getattr(args, "shards", 1) or 1
    if shards < 1:
        print("serve: --shards must be >= 1", file=sys.stderr)
        return 2
    # one shard is the classic service; more route by content hash onto
    # independent cache/admission units (disk tiers under shard-<i>/)
    make_service = (
        (lambda: ReorderService(cfg)) if shards == 1
        else (lambda: ShardedService(cfg, shards=shards))
    )

    t_total = time.perf_counter()
    try:
        with make_service() as svc:
            if getattr(args, "listen", None) is not None:
                from repro.telemetry.prometheus import MetricsServer

                calibration_fn = None
                if getattr(args, "flight", None):
                    from repro.telemetry import flight as _flight

                    def calibration_fn(path=args.flight):
                        records = _flight.read_records(path)
                        return _flight.calibrate(records) if records else None

                server = MetricsServer(
                    telemetry.get().metrics, port=args.listen,
                    status_fn=svc.stats, calibration_fn=calibration_fn,
                ).start()
                print(f"metrics endpoint listening on {server.url}",
                      file=sys.stderr)
            # submit everything up front so identical in-flight specs
            # coalesce, then gather in order
            loaded = [(spec, _load_spec(spec)) for spec in specs]
            futures = [
                (spec, mat, svc.submit(
                    mat, algorithm=args.algorithm, method=args.method,
                ))
                for spec, mat in loaded
            ]
            for spec, mat, fut in futures:
                if stop_event.is_set():
                    break
                t0 = time.perf_counter()
                res = fut.result(args.timeout)
                ms = (time.perf_counter() - t0) * 1e3
                rows.append({
                    "matrix": spec,
                    "n": mat.n,
                    "nnz": mat.nnz,
                    "method": res.method,
                    "initial_bandwidth": res.initial_bandwidth,
                    "reordered_bandwidth": res.reordered_bandwidth,
                    "wait_ms": ms,
                })
            total_s = time.perf_counter() - t_total
            if (server is not None and getattr(args, "linger", 0) > 0
                    and not stop_event.is_set()):
                # keep the endpoint scrapeable after the workload drains
                # (CI smoke tests, manual curl sessions); a signal cuts
                # the linger short
                stop_event.wait(args.linger)
            stats = svc.stats()
    finally:
        if prof is not None:
            from repro.telemetry import profiler as profmod

            profmod.stop_profiler()
        if server is not None:
            server.stop()
        for s, h in old_handlers.items():
            signal.signal(s, h)

    if args.json:
        print(json.dumps(
            {"requests": rows, "stats": stats,
             "total_s": total_s,
             "requests_per_s": len(rows) / total_s if total_s else 0.0},
            indent=2, sort_keys=True,
        ))
    else:
        for row in rows:
            print(f"{row['matrix']:<28s} n={row['n']:<8d} "
                  f"bw {row['initial_bandwidth']} -> "
                  f"{row['reordered_bandwidth']}  "
                  f"({row['wait_ms']:.2f} ms wait)")
        cache = stats["cache"]
        print(f"\n{len(rows)} requests in {total_s:.3f}s "
              f"({len(rows) / total_s:.1f} req/s)")
        print(f"computed={stats['service.computed']}  "
              f"cache hits={cache['hits']} misses={cache['misses']} "
              f"evictions={cache['evictions']}  "
              f"coalesced={stats['service.coalesced']}")
        if prof is not None:
            print(f"profiler: {prof.sample_count} stack samples at "
                  f"{prof.hz:g} Hz (self-overhead "
                  f"{prof.overhead_pct:.2f}%)")
        if "shards" in stats:
            print(f"shards: {stats['healthy_shards']}/{stats['n_shards']} "
                  "healthy; requests per shard: "
                  + ", ".join(
                      f"{s['shard_id']}={s['service.requests']}"
                      for s in stats["shards"]
                  ))
    if getattr(args, "telemetry", None):
        # the final flush runs on every exit path, signal-driven included
        n = telemetry.get().write_jsonl(
            args.telemetry, meta={"command": "serve", "requests": len(rows)}
        )
        print(f"wrote {n} telemetry events to {args.telemetry}",
              file=sys.stderr if args.json else sys.stdout)
    if caught:
        signum = caught["signum"]
        print(f"serve: shut down on {signal.Signals(signum).name} "
              f"after {len(rows)}/{len(specs)} requests", file=sys.stderr)
        return 128 + signum
    return 0


def cmd_telemetry(args) -> int:
    """``telemetry``: trajectory, flight-recorder and inventory analysis.

    ``ingest`` appends one provenance-stamped run record (every
    ``BENCH_*.json`` + the flight calibration summary) to the history
    store; ``trend`` renders noise-aware per-benchmark verdicts over the
    rolling history window (``--check`` exits non-zero on a statistical
    FAIL); ``calibrate FLIGHT.jsonl`` aggregates recorded ``method="auto"``
    resolutions into a predicted-vs-actual report with a per-backend
    mispick rate; ``critpath EVENTS.jsonl`` computes the critical path
    over a recorded span log with Amdahl-style what-if estimates;
    ``inventory`` prints the generated Prometheus metric table embedded
    in ``docs/observability.md``.  ``calibrate`` and ``critpath`` treat
    an absent/empty log as clean no-data (exit 0), not an error.
    """
    import json

    if args.telemetry_command == "inventory":
        from repro.telemetry.prometheus import metric_inventory_table

        print(metric_inventory_table())
        return 0

    if args.telemetry_command == "ingest":
        from repro.telemetry import history

        results_dir = Path(args.results_dir)
        if not results_dir.is_dir():
            print(f"ingest: no results directory at {results_dir}",
                  file=sys.stderr)
            return 2
        record = history.build_run_record(
            results_dir, flight_path=args.flight
        )
        if not record["benches"]:
            print(f"ingest: no BENCH_*.json artifacts in {results_dir}",
                  file=sys.stderr)
            return 2
        store = history.HistoryStore(args.history)
        store.append(record)
        print(
            f"appended run {record['git_sha'][:12]} "
            f"({len(record['benches'])} benches, "
            f"calibration={'yes' if record['calibration'] else 'no'}) "
            f"to {store.path} ({len(store)} runs)"
        )
        return 0

    if args.telemetry_command == "trend":
        from repro.telemetry import history

        path = Path(args.history)
        runs = history.read_history(path) if path.exists() else []
        if args.since:
            runs = history.runs_since(runs, args.since)
        if not runs:
            print(f"trend: no history runs in {path}", file=sys.stderr)
            return 0 if args.warn_only else 2
        verdicts = history.evaluate_trends(
            runs, window=args.window, min_samples=args.min_samples,
        )
        doc = history.verdict_document(verdicts, history_path=path)
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(f"{len(runs)} runs in {path} "
                  f"(window {args.window}, min samples {args.min_samples})")
            print(history.render_trends(verdicts))
            summary = ", ".join(
                f"{n} {s}" for s, n in sorted(doc["by_status"].items())
            )
            print(f"\nverdicts: {summary}")
        if args.verdict_out:
            Path(args.verdict_out).write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote verdict document to {args.verdict_out}",
                  file=sys.stderr if args.json else sys.stdout)
        if args.check and doc["failed"]:
            print(
                f"trend: statistical regression in {doc['failed']}",
                file=sys.stderr,
            )
            return 0 if args.warn_only else 1
        return 0

    if args.telemetry_command == "critpath":
        from repro.telemetry import events as tev
        from repro.telemetry.critical_path import (
            critical_path, format_report,
        )
        from repro.telemetry.spans import SpanRecord

        path = Path(args.events)
        recs = []
        if path.exists():
            recs = [
                SpanRecord.from_event(e) for e in tev.read_jsonl(path)
                if e.get("type") == "span"
            ]
        report = (
            critical_path(
                recs, trace_id=args.trace,
                what_if_factor=args.what_if_factor,
            )
            if recs else None
        )
        if report is None:
            # absent file, empty log, span-free log: clean no-data exit
            print(f"critpath: no span data at {path} "
                  f"(nothing recorded yet)")
            return 0
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_report(report))
        return 0

    # calibrate
    from repro.telemetry import flight

    path = Path(args.flight)
    records = flight.read_records(path) if path.exists() else []
    if not records:
        # absent or empty flight log is a clean no-data case, not an
        # error: CI calls this unconditionally after serve smoke runs
        print(f"calibrate: no flight data at {path} "
              f"(nothing recorded yet)")
        return 0
    report = flight.calibrate(records, tie_epsilon=args.tie_epsilon)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(flight.format_report(report))
    if (
        args.max_mispick_rate is not None
        and report["records"]
        and report["mispick_rate"] > args.max_mispick_rate
    ):
        print(
            f"calibrate: mispick rate {report['mispick_rate']:.1%} exceeds "
            f"threshold {args.max_mispick_rate:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_inspect(args) -> int:
    """``inspect``: per-request speculation/quality report for one matrix.

    Runs one fully-instrumented reorder and prints what the run *did*:
    the level-structure shape (the parallelism ceiling of any
    level-synchronous execution), the speculation economy (discovered vs
    dropped work, rediscovery passes, net efficiency), per-worker busy-time
    load imbalance, and the quality deltas the request actually bought.
    """
    import json

    from repro import reorder, telemetry
    from repro.sparse.bandwidth import envelope_after, envelope_size
    from repro.sparse.graph import bfs_levels

    tel = telemetry.get()
    tel.reset()
    telemetry.enable()
    mat = _get_input(args)
    start = "peripheral" if args.peripheral else "min-valence"
    res = reorder(
        mat, method=args.method, start=start, n_workers=args.workers
    )

    # level structure from the first component's chosen start: its width
    # profile bounds the exploitable parallelism of this request
    seed = res.start_nodes[0] if res.start_nodes else 0
    levels = bfs_levels(mat, seed)
    reached = levels >= 0
    widths = (
        np.bincount(levels[reached])
        if bool(reached.any()) else np.zeros(1, dtype=np.int64)
    )

    snap = tel.snapshot()
    counters = snap["counters"]
    disc = int(counters.get("threads.speculation.discovered", 0))
    drop = int(counters.get("threads.speculation.dropped", 0))
    redisc = int(counters.get("threads.speculation.rediscovery_passes", 0))
    efficiency = snap["gauges"].get("threads.speculation.efficiency")
    if efficiency is None and disc > 0:
        efficiency = (disc - drop) / disc

    # per-worker busy nanoseconds over non-Stall spans; max/mean is the
    # headroom a better steal/assignment policy could still recover
    busy: dict = {}
    for r in tel.tracer.records():
        if r.worker is not None and r.name != "Stall":
            busy[r.worker] = busy.get(r.worker, 0) + r.duration_ns
    imbalance = None
    if busy:
        mean_ns = sum(busy.values()) / len(busy)
        imbalance = max(busy.values()) / mean_ns if mean_ns else None

    init_env = envelope_size(mat)
    reord_env = int(envelope_after(mat, res.permutation))
    report = {
        "matrix": args.matrix or args.matrix_file,
        "n": mat.n,
        "nnz": mat.nnz,
        "method": res.method,
        "workers": args.workers,
        "wall_ms": res.wall_ms,
        "levels": {
            "depth": int(widths.size),
            "max_width": int(widths.max()) if widths.size else 0,
            "avg_width": float(widths.mean()) if widths.size else 0.0,
        },
        "speculation": {
            "discovered": disc,
            "dropped": drop,
            "rediscovery_passes": redisc,
            "efficiency": efficiency,
        },
        "workers_busy_ms": {
            str(w): ns / 1e6 for w, ns in sorted(busy.items())
        },
        "load_imbalance": imbalance,
        "quality": {
            "bandwidth_before": res.initial_bandwidth,
            "bandwidth_after": res.reordered_bandwidth,
            "bandwidth_reduction": (
                1.0 - res.reordered_bandwidth / res.initial_bandwidth
                if res.initial_bandwidth else None
            ),
            "envelope_before": init_env,
            "envelope_after": reord_env,
            "envelope_reduction": (
                1.0 - reord_env / init_env if init_env else None
            ),
        },
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0

    print(f"matrix={report['matrix']}  n={mat.n}  nnz={mat.nnz}  "
          f"method={res.method}  workers={args.workers}  "
          f"wall={res.wall_ms:.3f} ms")
    lv = report["levels"]
    print(f"level structure: depth={lv['depth']}  "
          f"max width={lv['max_width']}  avg width={lv['avg_width']:.1f}")
    if disc > 0:
        drop_pct = drop / disc * 100.0
        print(f"speculation: discovered={disc}  dropped={drop} "
              f"({drop_pct:.1f}%)  rediscovery passes={redisc}  "
              f"efficiency={efficiency:.3f}")
    else:
        print(f"speculation: none recorded (method={res.method} is not "
              f"speculative or the run was trivial)")
    if busy:
        per_worker = "  ".join(
            f"w{w}={ms:.2f}ms" for w, ms in
            ((w, ns / 1e6) for w, ns in sorted(busy.items()))
        )
        print(f"worker busy time: {per_worker}")
        print(f"load imbalance (max/mean busy): {imbalance:.2f}")
    q = report["quality"]
    bw_red = q["bandwidth_reduction"]
    env_red = q["envelope_reduction"]
    print(f"bandwidth: {q['bandwidth_before']} -> {q['bandwidth_after']}"
          + (f"  ({bw_red:.1%} reduction)" if bw_red is not None else ""))
    print(f"envelope:  {q['envelope_before']} -> {q['envelope_after']}"
          + (f"  ({env_red:.1%} reduction)" if env_red is not None else ""))
    return 0


def cmd_cache(args) -> int:
    """``cache``: inspect or invalidate a disk-tier permutation cache.

    Shard-aware: a root holding ``shard-<i>`` subdirectories (the layout
    :class:`~repro.service.ShardedService` persists) is iterated whole —
    listing, ``--invalidate`` and ``--clear`` sweep every shard tier —
    and ``--shard i`` narrows any operation to one shard.  A directory
    without shard subdirectories is a single anonymous tier, exactly the
    pre-sharding behavior.  ``--invalidate`` reports how many tiers (and
    which shards) actually dropped the key — a resharded key can live in
    several shards' directories at once.
    """
    import json
    import time

    from repro.service import PermutationCache
    from repro.service.router import discover_shard_dirs

    cache_dir = Path(args.cache_dir)
    shard_dirs = discover_shard_dirs(cache_dir)
    if getattr(args, "shard", None) is not None:
        if not shard_dirs:
            print(f"{cache_dir} has no shard-* tiers (unsharded layout); "
                  "--shard does not apply", file=sys.stderr)
            return 1
        narrowed = [(i, d) for i, d in shard_dirs if i == args.shard]
        if not narrowed:
            print(f"no shard-{args.shard} tier under {cache_dir}",
                  file=sys.stderr)
            return 1
        shard_dirs = narrowed
    # (shard index, tier directory); index None = unsharded single tier
    tiers = shard_dirs if shard_dirs else [(None, cache_dir)]

    if args.invalidate:
        # the listing truncates digests to 16 chars, so accept any
        # prefix that is unambiguous across every targeted tier
        digest = args.invalidate
        matches = {
            p.stem
            for _i, d in tiers if d.exists()
            for p in d.glob("*.npz") if p.stem.startswith(digest)
        }
        if len(matches) > 1:
            print(f"ambiguous digest prefix {digest} "
                  f"({len(matches)} matches)", file=sys.stderr)
            return 1
        if matches:
            digest = matches.pop()
        dropped = []
        for i, d in tiers:
            n_tiers = PermutationCache(disk_dir=d).invalidate(digest)
            if n_tiers:
                dropped.append((i, n_tiers))
        total = sum(n for _, n in dropped)
        if not total:
            print(f"no entry for {digest}")
            return 1
        where = ", ".join(
            "disk" if i is None else f"shard {i} disk" for i, _ in dropped
        )
        print(f"removed {digest} from {total} tier(s): {where}")
        return 0

    if args.clear:
        total = 0
        per_shard = []
        for i, d in tiers:
            n_before = (
                len(PermutationCache.disk_entries(d)) if d.exists() else 0
            )
            PermutationCache(disk_dir=d).clear(purge_disk=True)
            total += n_before
            if i is not None:
                per_shard.append(f"shard {i}: {n_before}")
        detail = f" ({', '.join(per_shard)})" if per_shard else ""
        print(f"cleared {total} entries from {cache_dir}{detail}")
        return 0

    if not cache_dir.exists():
        print(f"no cache directory at {cache_dir}", file=sys.stderr)
        return 1
    entries = []
    for i, d in tiers:
        for e in (PermutationCache.disk_entries(d) if d.exists() else []):
            if i is not None:
                e["shard"] = i
            entries.append(e)
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"{cache_dir}: empty")
        return 0
    sharded = shard_dirs and any("shard" in e for e in entries)
    now = time.time()
    shard_hdr = f"{'shard':>5s} " if sharded else ""
    print(f"{'digest':<16s} {shard_hdr}{'alg':<10s} {'method':<12s} "
          f"{'n':>8s} {'nnz':>10s} {'bytes':>10s}  age")
    for e in entries:
        shard_col = f"{e.get('shard', 0):>5d} " if sharded else ""
        if "error" in e:
            print(f"{e['digest'][:16]:<16s} {shard_col}<unreadable>")
            continue
        age = now - (e.get("created") or now)
        print(f"{e['digest'][:16]:<16s} {shard_col}"
              f"{e.get('algorithm', '?'):<10s} "
              f"{e.get('method', '?'):<12s} {e.get('n', 0):>8d} "
              f"{e.get('nnz', 0):>10d} {e.get('perm_bytes', 0):>10d}  "
              f"{age:7.1f}s")
    n_tier_txt = (
        f" across {len(tiers)} shard tier(s)" if shard_dirs else ""
    )
    print(f"{len(entries)} entries in {cache_dir}{n_tier_txt}")
    return 0


def cmd_bench(args) -> int:
    """``bench``: forward to one of the experiment drivers."""
    import importlib

    from repro import telemetry

    if getattr(args, "telemetry", None):
        telemetry.enable()
    mod = importlib.import_module(f"repro.bench.{args.experiment}")
    mod.main(args.rest)
    if getattr(args, "telemetry", None):
        n = telemetry.get().write_jsonl(
            args.telemetry,
            meta={"command": "bench", "experiment": args.experiment},
        )
        print(f"wrote {n} telemetry events to {args.telemetry}")
    return 0


def cmd_backends(args) -> int:
    """``backends``: the registered execution backends and what each honors.

    The default output is the exact Markdown capability table embedded in
    ``docs/api.md`` (regenerate the doc section from here).
    """
    if args.json:
        import json

        print(json.dumps(capability_rows(), indent=2))
    else:
        print(capability_table())
    return 0


def _add_input(parser, required: bool = True) -> None:
    grp = parser.add_mutually_exclusive_group(required=required)
    grp.add_argument("matrix_file", nargs="?", default=None,
                     help="matrix file (.mtx, .mtx.gz, .npz)")
    grp.add_argument("--matrix", default=None,
                     help="named test-set analogue (see 'generate --list')")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    from repro.facade import ALGORITHMS

    methods = list(method_choices())
    parser = argparse.ArgumentParser(
        prog="repro", description="Speculative parallel RCM reordering"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="matrix statistics and spy plot")
    _add_input(p)
    p.add_argument("--no-spy", action="store_true")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("reorder", help="compute and apply an ordering")
    _add_input(p)
    p.add_argument("-o", "--output", default=None, help="write reordered matrix")
    p.add_argument("--perm-output", default=None, help="write the permutation")
    p.add_argument("--algorithm", default="rcm", choices=list(ALGORITHMS),
                   help="ordering heuristic (default: rcm)")
    p.add_argument("--method", default="auto", choices=methods,
                   help="RCM execution strategy (default: auto — cheapest "
                        "backend by cost model; see 'repro backends')")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--start", type=int, default=None)
    p.add_argument("--peripheral", action="store_true",
                   help="pseudo-peripheral start node")
    p.add_argument("--transform", default=None, choices=["auto", "powerlaw"],
                   help="power-law pre-pass (hub extraction + relabeling); "
                        "'auto' applies it only on heavy-tailed patterns")
    p.add_argument("--symmetrize", action="store_true")
    p.add_argument("--spy", action="store_true", help="before/after spy plots")
    p.add_argument("--json", action="store_true",
                   help="machine-readable result (bandwidths, phases, stats)")
    p.add_argument("--telemetry", default=None, metavar="PATH.jsonl",
                   help="record wall-clock telemetry to a JSONL event log")
    p.set_defaults(func=cmd_reorder)

    p = sub.add_parser("generate", help="write a test-set analogue to a file")
    p.add_argument("matrix", nargs="?", default=None)
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--list", action="store_true", help="list available names")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("trace", help="Gantt / Chrome trace of a simulated run")
    _add_input(p)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--width", type=int, default=100)
    p.add_argument("-o", "--output", default=None, help="Chrome-tracing JSON")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "profile", help="wall-clock telemetry profile (JSONL + Chrome trace)"
    )
    _add_input(p)
    p.add_argument("--method", default="threads", choices=methods)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--peripheral", action="store_true",
                   help="pseudo-peripheral start node")
    p.add_argument("--width", type=int, default=100,
                   help="ASCII Gantt width (columns)")
    p.add_argument("-o", "--output", default="profile",
                   help="output prefix: <prefix>.jsonl + <prefix>.trace.json")
    p.add_argument("--hz", type=float, default=None,
                   help="sampling-profiler rate (default: ~67 Hz)")
    p.add_argument("--flame", default=None, metavar="PATH.folded",
                   help="write folded stacks (collapsed format) for "
                        "flamegraph.pl / inferno / speedscope")
    p.add_argument("--speedscope", default=None, metavar="PATH.json",
                   help="write a speedscope sampled-profile JSON "
                        "(browse at https://www.speedscope.app)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("compare", help="compare ordering heuristics")
    _add_input(p)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--mindeg", action="store_true",
                   help="include minimum degree (slow/fill-heavy on hubs)")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "serve", help="run a batch workload through the reordering service"
    )
    p.add_argument("workload", nargs="?", default=None,
                   help="text file: one matrix spec (path or analogue name) "
                        "per line; '#' comments allowed")
    p.add_argument("--matrix", action="append", default=None,
                   help="add a named analogue to the workload (repeatable)")
    p.add_argument("--algorithm", default="rcm", choices=list(ALGORITHMS))
    p.add_argument("--method", default="auto", choices=methods)
    p.add_argument("--workers", type=int, default=2,
                   help="service worker threads per shard (default: 2)")
    p.add_argument("--shards", type=int, default=1,
                   help="consistent-hash service shards; each owns its own "
                        "cache, disk tier (shard-<i>/ under --cache-dir), "
                        "queue and admission thread (default: 1 = the "
                        "classic unsharded service)")
    p.add_argument("--repeat", type=int, default=1,
                   help="cycle the workload N times (exercises the cache)")
    p.add_argument("--capacity", type=int, default=128,
                   help="in-memory cache entries (LRU bound)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="bounded submission queue size")
    p.add_argument("--batch-window-ms", type=float, default=0.0,
                   metavar="MS",
                   help="batched admission: hold requests up to MS "
                        "milliseconds and dispatch them as one group "
                        "(0 = per-request dispatch, the default)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="max requests per admission batch (default 16)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request timeout in seconds")
    p.add_argument("--cache-dir", default=None,
                   help="disk cache tier directory (persists across runs)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable requests + service stats")
    p.add_argument("--telemetry", default=None, metavar="PATH.jsonl",
                   help="record wall-clock telemetry to a JSONL event log")
    p.add_argument("--listen", type=int, default=None, metavar="PORT",
                   help="serve /metrics, /healthz and /statusz on "
                        "127.0.0.1:PORT while the workload runs "
                        "(0 = OS-assigned; implies telemetry)")
    p.add_argument("--linger", type=float, default=0.0, metavar="SECONDS",
                   help="keep the --listen endpoint up this long after the "
                        "workload drains (scrape window for smoke tests)")
    p.add_argument("--flight", default=None, metavar="PATH.jsonl",
                   help="record method=auto cost-model resolutions to a "
                        "flight-recorder ring file")
    p.add_argument("--profile", action="store_true",
                   help="run the continuous sampling profiler for the "
                        "workload (implies telemetry; with --listen also "
                        "surfaces /debug/flame + /debug/critpath, a "
                        "profiler: line in /statusz and "
                        "telemetry.profiler.* gauges)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "telemetry",
        help="run history, trends, flight calibration, critical path, "
             "inventory",
    )
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    tp = tsub.add_parser(
        "ingest",
        help="append one provenance-stamped run record to the history store",
    )
    tp.add_argument("--results-dir", default="benchmarks/results",
                    help="directory holding BENCH_*.json artifacts "
                         "(default: benchmarks/results)")
    tp.add_argument("--history", default="benchmarks/results/history.jsonl",
                    help="history store path (append-only JSONL)")
    tp.add_argument("--flight", default=None, metavar="PATH.jsonl",
                    help="fold this flight-recorder file's calibration "
                         "summary into the run record")
    tp.set_defaults(func=cmd_telemetry)
    tp = tsub.add_parser(
        "trend",
        help="noise-aware per-benchmark trend verdicts over the history",
    )
    tp.add_argument("--history", default="benchmarks/results/history.jsonl",
                    help="history store path (append-only JSONL)")
    tp.add_argument("--check", action="store_true",
                    help="exit 1 when any benchmark's verdict is FAIL")
    tp.add_argument("--since", default=None, metavar="SHA",
                    help="only consider runs at or after this git sha prefix")
    tp.add_argument("--window", type=int, default=20,
                    help="rolling window of prior runs per verdict "
                         "(default: 20)")
    tp.add_argument("--min-samples", type=int, default=5,
                    help="prior samples required before verdicts are "
                         "statistical; fewer yields SKIP (default: 5)")
    tp.add_argument("--warn-only", action="store_true",
                    help="report FAILs but always exit 0 (PR-CI mode)")
    tp.add_argument("--json", action="store_true",
                    help="print the machine-readable verdict document")
    tp.add_argument("--verdict-out", default=None, metavar="PATH.json",
                    help="also write the verdict document to a file")
    tp.set_defaults(func=cmd_telemetry)
    tp = tsub.add_parser(
        "calibrate",
        help="predicted-vs-actual report over a flight-recorder file",
    )
    tp.add_argument("flight", help="flight-recorder JSONL file")
    tp.add_argument("--tie-epsilon", type=float, default=0.05,
                    help="relative margin below which competing predictions "
                         "count as a tie, not a mispick (default: 0.05)")
    tp.add_argument("--max-mispick-rate", type=float, default=None,
                    help="exit non-zero when the overall mispick rate "
                         "exceeds this fraction")
    tp.add_argument("--json", action="store_true",
                    help="machine-readable report")
    tp.set_defaults(func=cmd_telemetry)
    tp = tsub.add_parser(
        "critpath",
        help="critical-path + what-if report over a telemetry span log",
    )
    tp.add_argument("events", help="telemetry JSONL event log (the "
                                   "profile/serve --telemetry output)")
    tp.add_argument("--trace", default=None, metavar="TRACE_ID",
                    help="restrict the analysis to one request's trace id")
    tp.add_argument("--what-if-factor", type=float, default=2.0,
                    metavar="X",
                    help="hypothetical per-phase speedup for the what-if "
                         "estimates (default: 2.0)")
    tp.add_argument("--json", action="store_true",
                    help="machine-readable report")
    tp.set_defaults(func=cmd_telemetry)
    tp = tsub.add_parser(
        "inventory",
        help="print the generated Prometheus metric inventory table",
    )
    tp.set_defaults(func=cmd_telemetry)

    p = sub.add_parser(
        "inspect",
        help="per-request speculation/quality report for one matrix",
    )
    _add_input(p)
    p.add_argument("--method", default="threads", choices=methods,
                   help="RCM execution strategy (default: threads — the "
                        "speculative backend the report is about)")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--peripheral", action="store_true",
                   help="pseudo-peripheral start node")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "cache", help="inspect or invalidate a disk permutation cache"
    )
    p.add_argument("cache_dir",
                   help="disk cache tier directory (a sharded root with "
                        "shard-<i>/ subdirectories is iterated whole)")
    p.add_argument("--shard", type=int, default=None, metavar="I",
                   help="target one shard's tier of a sharded cache root")
    p.add_argument("--invalidate", metavar="DIGEST", default=None,
                   help="remove one entry by its content-hash digest; "
                        "reports every tier (per shard) that dropped it")
    p.add_argument("--clear", action="store_true",
                   help="remove every entry (all shard tiers unless "
                        "--shard narrows it)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable entry listing")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "backends", help="list registered execution backends + capabilities"
    )
    p.add_argument("--json", action="store_true",
                   help="machine-readable capability rows")
    p.set_defaults(func=cmd_backends)

    p = sub.add_parser("bench", help="run an experiment driver")
    p.add_argument("experiment",
                   choices=["table1", "fig1", "fig2", "fig3", "fig4", "fig5",
                            "fig6", "ablation", "paper", "speedup",
                            "throughput"])
    p.add_argument("--telemetry", default=None, metavar="PATH.jsonl",
                   help="record wall-clock telemetry to a JSONL event log")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="arguments forwarded to the driver")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "generate" and not args.list:
        if not args.matrix or not args.output:
            parser.error("generate requires a matrix name and -o OUTPUT")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
