#!/usr/bin/env python
"""Ordering-heuristic shoot-out: RCM vs Sloan vs GPS vs min-degree vs spectral.

The paper's related work surveys the classical alternatives and notes RCM
remains the practical default.  This example makes that concrete on a
scrambled FEM mesh: each heuristic's bandwidth/envelope/wavefront next to
its runtime, with spy plots of the two extremes.

Run: ``python examples/ordering_comparison.py``
"""

import time

import numpy as np

from repro import reorder
from repro.orderings import (
    sloan,
    gibbs_poole_stockmeyer,
    minimum_degree,
    spectral_ordering,
)
from repro.matrices import delaunay_mesh
from repro.sparse.bandwidth import bandwidth_after, envelope_size, rms_wavefront
from repro.sparse.spy import side_by_side


def main() -> None:
    mesh = delaunay_mesh(1500, seed=5)
    rng = np.random.default_rng(1)
    mat = mesh.permute_symmetric(rng.permutation(mesh.n))
    print(f"scrambled mesh: n={mat.n}, nnz={mat.nnz}")

    heuristics = {
        "RCM (batch-cpu)": lambda m: reorder(
            m, method="batch-cpu", n_workers=8, start="peripheral"
        ).permutation,
        "Sloan": sloan,
        "GPS": gibbs_poole_stockmeyer,
        "min-degree": minimum_degree,
        "spectral": spectral_ordering,
    }

    print(f"\n{'heuristic':18s} {'bandwidth':>9s} {'envelope':>10s} "
          f"{'rms wavefront':>13s} {'seconds':>8s}")
    results = {}
    for name, fn in heuristics.items():
        t0 = time.perf_counter()
        perm = fn(mat)
        dt = time.perf_counter() - t0
        after = mat.permute_symmetric(perm)
        results[name] = after
        print(f"{name:18s} {bandwidth_after(mat, perm):9d} "
              f"{envelope_size(after):10d} {rms_wavefront(after):13.1f} "
              f"{dt:8.2f}")

    print("\nthe two extremes, side by side:")
    print(side_by_side(
        results["min-degree"], results["RCM (batch-cpu)"],
        size=30, titles=("min-degree (fill-oriented)", "RCM (band-oriented)"),
    ))
    print("\ntakeaway: min-degree scatters the pattern (it optimizes factor "
          "fill, not bandwidth); RCM/GPS produce the tight band the paper's "
          "SpMV and envelope use cases need.")


if __name__ == "__main__":
    main()
