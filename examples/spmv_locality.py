#!/usr/bin/env python
"""SpMV cache locality: RCM as a throughput optimization for iterative solvers.

The paper's second motivation: bandwidth "dictates memory access patterns in
sparse matrix operations, which, in turn, dictate caching behavior".  This
example quantifies the effect two ways:

1. a *cache-model* metric — simulate a small direct-mapped cache over the
   column-access stream of an SpMV and count misses before/after RCM;
2. measured wall time of ``scipy`` SpMV on both orderings (the effect is
   visible even through SciPy's C kernel for large enough matrices).

Run: ``python examples/spmv_locality.py``
"""

import time

import numpy as np

from repro import reorder
from repro.matrices import grid3d
from repro.sparse.csr import CSRMatrix


def cache_misses(mat: CSRMatrix, *, lines: int = 512, line_words: int = 8) -> int:
    """Direct-mapped cache misses over the SpMV x-gather stream.

    Each stored entry (i, j) loads x[j]; a line holds ``line_words``
    consecutive entries of x.  Vectorized simulation of tag churn.
    """
    line_of = mat.indices // line_words
    slot = line_of % lines
    tags = np.full(lines, -1, dtype=np.int64)
    misses = 0
    # process in chunks to keep the python loop coarse
    for chunk in np.array_split(line_of, max(len(line_of) // 65536, 1)):
        s = chunk % lines
        for ln, sl in zip(chunk.tolist(), s.tolist()):
            if tags[sl] != ln:
                tags[sl] = ln
                misses += 1
    return misses


def timed_spmv(mat: CSRMatrix, reps: int = 50) -> float:
    a = mat.to_scipy()
    x = np.random.default_rng(0).random(mat.n)
    a @ x  # warm up
    t0 = time.perf_counter()
    for _ in range(reps):
        a @ x
    return (time.perf_counter() - t0) / reps * 1e3


def main() -> None:
    mat = grid3d(22, 22, 22, stencil=27)
    rng = np.random.default_rng(7)
    scrambled = mat.permute_symmetric(rng.permutation(mat.n))

    res = reorder(scrambled, method="batch-cpu", n_workers=8)
    reordered = scrambled.permute_symmetric(res.permutation)

    print(f"matrix: n={mat.n}, nnz={mat.nnz}")
    print(f"bandwidth: {res.initial_bandwidth} -> {res.reordered_bandwidth}")

    m_before = cache_misses(scrambled)
    m_after = cache_misses(reordered)
    print(f"modelled x-vector cache misses: {m_before} -> {m_after} "
          f"({m_before / max(m_after, 1):.2f}x fewer)")

    t_before = timed_spmv(scrambled)
    t_after = timed_spmv(reordered)
    print(f"measured SpMV: {t_before:.3f} ms -> {t_after:.3f} ms "
          f"({t_before / t_after:.2f}x)")
    print("(wall-clock ratio is machine dependent; the miss model is the "
          "portable signal)")


if __name__ == "__main__":
    main()
