#!/usr/bin/env python
"""Many-core pipeline: RCM in a sequence of on-device matrix operations.

The paper's punchline: "it is now possible to include RCM reordering into
sequences of sparse matrix operations without major performance loss".  This
example plays a GPU workflow — assemble, reorder, iterate — comparing three
strategies using the simulated device and the PCIe transfer model:

  A. no reordering (pay scattered memory access in every SpMV — modelled
     via the cache-miss proxy);
  B. transfer to host, serial CPU RCM, transfer back (the pre-paper option);
  C. GPU-BATCH on the device (the paper's contribution).

Run: ``python examples/gpu_pipeline.py``
"""

import numpy as np

from repro import reorder, run_batch_rcm_gpu
from repro.core.serial import serial_cycles, cuthill_mckee
from repro.machine.costmodel import SERIAL_CPU
from repro.baselines.transfer import transfer_ms
from repro.matrices import grid3d
from repro.bench.runner import pick_start


def main() -> None:
    mat = grid3d(20, 20, 20, stencil=27)
    rng = np.random.default_rng(3)
    scrambled = mat.permute_symmetric(rng.permutation(mat.n))
    scrambled.data = np.ones(scrambled.nnz)  # valued: transfers carry values
    start, total = pick_start(scrambled)

    print(f"device-resident matrix: n={mat.n}, nnz={mat.nnz}")

    # --- B: round trip over PCIe + serial host RCM ----------------------
    xfer = transfer_ms(scrambled)
    host_ms = serial_cycles(scrambled, cuthill_mckee(scrambled, start)) / (
        SERIAL_CPU.clock_ghz * 1e6
    )
    print(f"\n[B] host reorder: transfer {xfer:.3f} ms + "
          f"serial RCM {host_ms:.3f} ms = {xfer + host_ms:.3f} ms")

    # --- C: reorder where the data lives ---------------------------------
    res = run_batch_rcm_gpu(scrambled, start, total=total)
    print(f"[C] GPU-BATCH on device: {res.milliseconds:.3f} ms "
          f"({res.n_workers} thread-blocks, "
          f"{res.stats.batches_executed} batches executed, "
          f"{res.stats.batches_empty} empties discarded)")

    winner = "C (on-device)" if res.milliseconds < xfer + host_ms else "B (host)"
    print(f"    -> {winner} wins; the paper finds transfer only ever "
          f"amortizes for the smallest matrices")

    # --- A vs C: is reordering worth it for the iteration phase? ---------
    ref = reorder(scrambled, method="serial", start=start)
    assert np.array_equal(res.permutation, ref.permutation)
    print(f"\nbandwidth {ref.initial_bandwidth} -> {ref.reordered_bandwidth}; "
          "every SpMV in the subsequent solver iteration now walks a banded "
          "matrix — see examples/spmv_locality.py for the cache effect")


if __name__ == "__main__":
    main()
