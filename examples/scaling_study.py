#!/usr/bin/env python
"""Scaling study: how much parallelism does *your* matrix offer?

The paper's Sec. VI-E: NNZ alone does not predict batch-RCM scaling — the
average BFS front width does.  This example sweeps worker counts for
matrices from three structural regimes, prints speed-up curves next to
their front statistics, and shows the stage breakdown (Fig. 6 style) so you
can see stalls eat the gains exactly when the front is narrow.

Run: ``python examples/scaling_study.py``
"""

from repro import run_batch_rcm, CPUCostModel
from repro.core.serial import serial_cycles
from repro.machine.costmodel import SERIAL_CPU
from repro.machine.stats import Stage
from repro.matrices import grid2d, grid3d, road_network
from repro.sparse.graph import front_statistics
from repro.bench.runner import pick_start

WORKERS = (1, 2, 4, 8, 16)


def study(name, mat):
    start, total = pick_start(mat)
    fs = front_statistics(mat, start)
    serial_ms = serial_cycles(mat, start=start) / (SERIAL_CPU.clock_ghz * 1e6)
    print(f"\n{name}: n={mat.n} nnz={mat.nnz} "
          f"avg front={fs.avg_front:.1f} depth={fs.depth}")
    print(f"  serial: {serial_ms:.3f} ms")
    model = CPUCostModel()
    for w in WORKERS:
        res = run_batch_rcm(mat, start, model=model, n_workers=w, total=total)
        sh = res.stats.stage_shares()
        print(f"  {w:2d} workers: {res.milliseconds:7.3f} ms "
              f"(speedup {serial_ms / res.milliseconds:4.2f}x, "
              f"stall {sh[Stage.STALL]:4.0%}, "
              f"discover {sh[Stage.DISCOVER]:4.0%})")


def main() -> None:
    study("3-D FEM (wide front — scales)", grid3d(14, 14, 14, stencil=27))
    study("2-D grid (moderate front)", grid2d(90, 90))
    study("road network (narrow front — does not scale)",
          road_network(6000, seed=1))
    print("\ntakeaway: the average BFS front predicts scaling; "
          "on narrow graphs the serial version remains the right tool "
          "(paper Sec. VI-E)")


if __name__ == "__main__":
    main()
