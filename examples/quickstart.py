#!/usr/bin/env python
"""Quickstart: reorder a sparse matrix and inspect the bandwidth reduction.

Builds a 2-D grid Laplacian pattern, scrambles it with a random permutation
(so the natural band structure is hidden, as in real assembled systems),
then recovers a banded form with RCM — serial, simulated-parallel CPU and
simulated many-core GPU all return the *identical* permutation, which is the
paper's central guarantee.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import reorder, bandwidth
from repro.matrices import grid2d
from repro.sparse.bandwidth import envelope_size, rms_wavefront


def main() -> None:
    # a 60x60 five-point grid, scrambled
    mat = grid2d(60, 60)
    rng = np.random.default_rng(42)
    scrambled = mat.permute_symmetric(rng.permutation(mat.n))
    print(f"matrix: n={scrambled.n}, nnz={scrambled.nnz}")
    print(f"scrambled bandwidth: {bandwidth(scrambled)}")
    print(f"scrambled envelope:  {envelope_size(scrambled)}")

    # serial ground truth
    res = reorder(scrambled, method="serial", start="peripheral")
    print(f"\nRCM (serial):        bandwidth {res.initial_bandwidth} -> "
          f"{res.reordered_bandwidth}")

    # the paper's parallel algorithm on the simulated 8-thread CPU
    res_cpu = reorder(
        scrambled, method="batch-cpu", start="peripheral", n_workers=8
    )
    assert np.array_equal(res_cpu.permutation, res.permutation), \
        "parallel RCM must equal the serial permutation"
    print("RCM (batch-cpu, 8 simulated workers): identical permutation ✓")

    # the first GPU RCM, on the simulated many-core device
    res_gpu = reorder(
        scrambled, method="batch-gpu", start="peripheral"
    )
    assert np.array_equal(res_gpu.permutation, res.permutation)
    print("RCM (batch-gpu, 160 simulated thread-blocks): identical ✓")

    reordered = scrambled.permute_symmetric(res.permutation)
    print(f"\nreordered envelope:  {envelope_size(reordered)}")
    print(f"reordered RMS wavefront: {rms_wavefront(reordered):.1f} "
          f"(was {rms_wavefront(scrambled):.1f})")

    st = res_cpu.stats[0]
    print(f"\nsimulated CPU run: {st.summary()}")


if __name__ == "__main__":
    main()
