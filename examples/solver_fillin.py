#!/usr/bin/env python
"""Direct-solver fill-in: why bandwidth reduction matters for Cholesky.

The paper's motivation: "the matrix bandwidth is a good indicator for the
fill-in, e.g., in Cholesky solvers".  This example factorizes a 2-D FEM-style
system before and after RCM and counts the factor's nonzeros — the envelope
bound in action — using SciPy's sparse LU (with natural ordering so *our*
permutation is the only reordering in play).

Run: ``python examples/solver_fillin.py``
"""

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import reorder
from repro.matrices import delaunay_mesh
from repro.sparse.csr import CSRMatrix
from repro.sparse.bandwidth import envelope_size


def laplacian_system(pattern: CSRMatrix) -> sp.csc_matrix:
    """SPD graph Laplacian + I on the mesh pattern."""
    a = pattern.to_scipy()
    deg = np.asarray(a.sum(axis=1)).ravel()
    lap = sp.diags(deg + 1.0) - a
    return lap.tocsc()


def factor_nnz(system: sp.csc_matrix) -> int:
    """Nonzeros of the LU factors under natural ordering."""
    lu = spla.splu(
        system,
        permc_spec="NATURAL",
        options=dict(SymmetricMode=True, DiagPivotThresh=0.0),
    )
    return int(lu.L.nnz + lu.U.nnz)


def main() -> None:
    mesh = delaunay_mesh(2500, seed=11)
    rng = np.random.default_rng(0)
    scrambled = mesh.permute_symmetric(rng.permutation(mesh.n))

    res = reorder(scrambled, method="batch-cpu", n_workers=8,
                               start="peripheral")
    reordered = scrambled.permute_symmetric(res.permutation)

    before = laplacian_system(scrambled)
    after = laplacian_system(reordered)

    nnz_before = factor_nnz(before)
    nnz_after = factor_nnz(after)

    print(f"mesh: n={mesh.n}, nnz={mesh.nnz}")
    print(f"bandwidth: {res.initial_bandwidth} -> {res.reordered_bandwidth}")
    print(f"envelope:  {envelope_size(scrambled)} -> {envelope_size(reordered)}")
    print(f"LU factor nnz (natural ordering): {nnz_before} -> {nnz_after} "
          f"({nnz_before / nnz_after:.1f}x less fill-in)")

    # sanity: the reordered system solves the same problem
    b = rng.random(mesh.n)
    x_before = spla.spsolve(before, b)
    perm = res.permutation
    x_after = spla.spsolve(after, b[perm])
    assert np.allclose(x_after, x_before[perm], atol=1e-8)
    print("solution identical under the permutation ✓")

    # the same story through the library's own envelope Cholesky, where
    # factor storage *is* the profile (repro.solver.envelope)
    from repro.solver.envelope import (
        SkylineMatrix, envelope_cholesky, solve_cholesky, cholesky_flops,
    )
    from repro.sparse.csr import CSRMatrix

    sys_before = CSRMatrix.from_scipy(before.tocsr())
    sys_after = CSRMatrix.from_scipy(after.tocsr())
    sky_b = SkylineMatrix.from_csr(sys_before)
    sky_a = SkylineMatrix.from_csr(sys_after)
    print(f"\nenvelope Cholesky (repro.solver): storage {sky_b.storage} -> "
          f"{sky_a.storage}, flops {cholesky_flops(sky_b):.2e} -> "
          f"{cholesky_flops(sky_a):.2e} "
          f"({cholesky_flops(sky_b) / cholesky_flops(sky_a):.1f}x fewer)")
    x_env = solve_cholesky(envelope_cholesky(sky_a), b[perm])
    assert np.allclose(x_env, x_before[perm], atol=1e-6)
    print("envelope solver agrees with SciPy ✓")


if __name__ == "__main__":
    main()
