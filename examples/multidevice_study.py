#!/usr/bin/env python
"""Multi-device RCM: how far does the signal chain stretch? (Sec. VII)

The paper closes with: "its intrinsic properties lend themselves to
multi-device and multi-node extensions, transmitting signals across
devices/nodes".  This example runs the batch algorithm on simulated 1-, 2-
and 4-device topologies with NVLink-, PCIe- and network-class interconnects,
holding the total worker budget fixed — showing when the cross-device signal
latency starts to eat the parallel gains, and that the permutation stays
exactly the serial one throughout.

Run: ``python examples/multidevice_study.py``
"""

import numpy as np

from repro import run_batch_rcm, CPUCostModel, BatchConfig
from repro.core.serial import rcm_serial
from repro.machine.multidevice import DeviceTopology
from repro.matrices import grid3d
from repro.bench.runner import pick_start

TOTAL_WORKERS = 24
LINKS = {
    "NVLink (~2µs)": 8_000.0,
    "PCIe p2p (~8µs)": 30_000.0,
    "network (~30µs)": 120_000.0,
}


def main() -> None:
    mat = grid3d(14, 14, 14, stencil=27)
    start, total = pick_start(mat)
    ref = rcm_serial(mat, start)
    model = CPUCostModel()
    cfg = BatchConfig(batch_size=32)

    base = run_batch_rcm(
        mat, start, model=model, n_workers=TOTAL_WORKERS, config=cfg, total=total
    )
    print(f"matrix: n={mat.n}, nnz={mat.nnz}")
    print(f"single device, {TOTAL_WORKERS} workers: {base.milliseconds:.3f} ms\n")

    print(f"{'devices':>8s}  " + "  ".join(f"{k:>16s}" for k in LINKS))
    for devices in (2, 4):
        cells = []
        for latency in LINKS.values():
            topo = DeviceTopology(
                n_devices=devices,
                workers_per_device=TOTAL_WORKERS // devices,
                cross_signal_cycles=latency,
            )
            res = run_batch_rcm(
                mat, start, model=model, n_workers=TOTAL_WORKERS,
                topology=topo, config=cfg, total=total,
            )
            assert np.array_equal(res.permutation, ref), "permutation changed!"
            slowdown = res.milliseconds / base.milliseconds
            cells.append(f"{res.milliseconds:8.3f} ({slowdown:4.1f}x)")
        print(f"{devices:>8d}  " + "  ".join(f"{c:>16s}" for c in cells))

    print("\npermutation identical to serial RCM in every configuration ✓")
    print("takeaway: NVLink-class links keep multi-device RCM viable; "
          "network-class latency lets the slot-chained signals dominate — "
          "the extension the paper anticipates needs latency-hiding across "
          "nodes (deeper multi-batch queues or chain batching).")


if __name__ == "__main__":
    main()
