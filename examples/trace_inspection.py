#!/usr/bin/env python
"""Inspect a simulated run: Gantt chart, stage timeline, invariant audit.

Shows what the machinery of Sec. IV actually looks like at runtime — which
worker held which stage when, how speculation front-loads Discover/Sort,
where stalls cluster — and runs the trace checker that the test-suite uses
to audit randomized executions.

Run: ``python examples/trace_inspection.py``
"""

from repro import BatchConfig, CPUCostModel
from repro.core.state import make_state
from repro.core.batch import worker_loop
from repro.core.serial import rcm_serial
from repro.machine.engine import Engine
from repro.machine.tracing import ascii_gantt, stage_timeline, to_chrome_tracing
from repro.machine.checker import check_trace
from repro.matrices import grid3d
from repro.bench.runner import pick_start

import numpy as np


def main() -> None:
    mat = grid3d(9, 9, 9, stencil=27)
    start, total = pick_start(mat)
    workers = 6
    model = CPUCostModel()

    state = make_state(mat, start, n_workers=workers, total=total)
    engine = Engine(workers, state.stats, trace=True)
    engine.run([
        worker_loop(state, BatchConfig(), model, engine)
        for _ in range(workers)
    ])
    assert np.array_equal(state.permutation(), rcm_serial(mat, start))
    state.sync_queue_stats()

    print(ascii_gantt(engine.trace, width=96, n_workers=workers))
    print()
    print(state.stats.summary())

    # stage timeline: when did sorting happen relative to the makespan?
    sorts = stage_timeline(engine.trace, "Sort")
    if sorts:
        busy = sum(e - s for s, e in sorts)
        print(f"\n{len(sorts)} sort phases, {busy:.0f} cycles total "
              f"({100 * busy / engine.stats.total_cycles():.1f}% of all "
              "cycles) — sorting runs speculatively, before the batches' "
              "discoveries are confirmed")

    # audit the execution
    check_trace(engine.trace, engine.stats)
    print("\ntrace invariants verified: no overlaps, conserved cycle "
          "accounting, all events within the makespan ✓")

    to_chrome_tracing(engine.trace, "/tmp/rcm_trace.json",
                      clock_ghz=model.clock_ghz)
    print("wrote /tmp/rcm_trace.json — open in chrome://tracing or Perfetto")


if __name__ == "__main__":
    main()
